//! The [`RawSource`] abstraction: where engines fetch raw series from at
//! query time.
//!
//! ParIS/ParIS+ read non-pruned candidates from disk ("for which the raw
//! values need to be read from disk", §III); MESSI points into an in-memory
//! array. Engines are generic over this trait so the same query code runs
//! in both modes; `as_memory` exposes the zero-copy fast path.

use crate::error::StorageError;
use dsidx_series::Dataset;

/// A positionally addressable collection of equal-length raw series.
pub trait RawSource: Sync {
    /// Number of series.
    fn count(&self) -> usize;

    /// Length of each series.
    fn series_len(&self) -> usize;

    /// Copies series `pos` into `out` (`out.len() == series_len`).
    ///
    /// # Errors
    /// Out-of-bounds positions and I/O failures.
    fn read_into(&self, pos: usize, out: &mut [f32]) -> Result<(), StorageError>;

    /// Zero-copy access when the source is an in-memory dataset.
    fn as_memory(&self) -> Option<&Dataset> {
        None
    }
}

impl RawSource for Dataset {
    fn count(&self) -> usize {
        self.len()
    }

    fn series_len(&self) -> usize {
        self.series_len()
    }

    fn read_into(&self, pos: usize, out: &mut [f32]) -> Result<(), StorageError> {
        let s = self.try_get(pos)?;
        out.copy_from_slice(s);
        Ok(())
    }

    fn as_memory(&self) -> Option<&Dataset> {
        Some(self)
    }
}

impl<S: RawSource> RawSource for &S {
    fn count(&self) -> usize {
        (**self).count()
    }

    fn series_len(&self) -> usize {
        (**self).series_len()
    }

    fn read_into(&self, pos: usize, out: &mut [f32]) -> Result<(), StorageError> {
        (**self).read_into(pos, out)
    }

    fn as_memory(&self) -> Option<&Dataset> {
        (**self).as_memory()
    }
}

/// A fault-injecting [`RawSource`] for tests: serves reads from an
/// in-memory dataset until a budget of successful reads is exhausted, then
/// fails every subsequent read with [`StorageError::Io`] — the shape of a
/// device dying mid-query.
///
/// Deliberately *not* `as_memory`-optimized: engines must take their
/// fallible read path, so a recovering engine is proven to propagate the
/// error instead of panicking. Thread-safe; the budget is shared across
/// all readers (parallel schedules hit it from every worker).
#[derive(Debug)]
pub struct FlakySource {
    data: Dataset,
    reads_left: std::sync::atomic::AtomicU64,
    /// Set by the first failing read, which also bumps
    /// [`FLAKY_TRIPS_TOTAL`](crate::metrics::FLAKY_TRIPS_TOTAL) and emits a
    /// `flaky_trip` trace event.
    trip_noted: std::sync::atomic::AtomicBool,
}

impl FlakySource {
    /// Wraps `data`, allowing exactly `reads_before_failure` successful
    /// reads (across all threads) before every read fails.
    #[must_use]
    pub fn new(data: Dataset, reads_before_failure: u64) -> Self {
        Self {
            data,
            reads_left: std::sync::atomic::AtomicU64::new(reads_before_failure),
            trip_noted: std::sync::atomic::AtomicBool::new(false),
        }
    }

    /// Records the first budget exhaustion in the obs registry and the
    /// trace stream.
    #[cold]
    fn note_trip(&self) {
        // ORDERING: relaxed — once-only latch for metric/trace emission;
        // double emission is the only thing at stake, no data rides on it.
        if self
            .trip_noted
            .swap(true, std::sync::atomic::Ordering::Relaxed)
        {
            return;
        }
        if dsidx_obs::enabled() {
            static TRIPS: std::sync::OnceLock<&'static dsidx_obs::registry::Counter> =
                std::sync::OnceLock::new();
            TRIPS
                .get_or_init(|| {
                    dsidx_obs::registry::counter(
                        crate::metrics::FLAKY_TRIPS_TOTAL,
                        "Fault-injection read budgets exhausted",
                    )
                })
                .inc();
        }
        if dsidx_obs::trace::enabled() {
            dsidx_obs::trace::emit(
                "flaky_trip",
                &[(
                    "series",
                    dsidx_obs::trace::Value::U64(self.data.len() as u64),
                )],
            );
        }
    }

    /// `true` once the read budget is exhausted (any further read fails).
    #[must_use]
    pub fn tripped(&self) -> bool {
        // ORDERING: relaxed — diagnostic read of a self-contained budget
        // counter; callers tolerate a momentarily stale answer.
        self.reads_left.load(std::sync::atomic::Ordering::Relaxed) == 0
    }
}

impl RawSource for FlakySource {
    fn count(&self) -> usize {
        self.data.len()
    }

    fn series_len(&self) -> usize {
        self.data.series_len()
    }

    fn read_into(&self, pos: usize, out: &mut [f32]) -> Result<(), StorageError> {
        // Budget check via a CAS loop: decrement only while non-zero, so
        // concurrent readers never wrap the counter.
        // ORDERING: relaxed — the budget counter is the entire shared
        // state; the CAS only has to be atomic, it publishes no payload.
        let mut left = self.reads_left.load(std::sync::atomic::Ordering::Relaxed);
        loop {
            if left == 0 {
                self.note_trip();
                return Err(StorageError::Io(std::io::Error::other(
                    "injected fault: read budget exhausted",
                )));
            }
            match self.reads_left.compare_exchange_weak(
                left,
                left - 1,
                // ORDERING: relaxed on success and failure — the budget
                // counter is self-contained (see comment on the load).
                std::sync::atomic::Ordering::Relaxed,
                std::sync::atomic::Ordering::Relaxed,
            ) {
                Ok(_) => break,
                Err(now) => left = now,
            }
        }
        self.data.read_into(pos, out)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dsidx_series::gen::sines;

    #[test]
    fn dataset_is_a_raw_source() {
        let ds = sines(4, 16, 1);
        let src: &dyn RawSource = &ds;
        assert_eq!(src.count(), 4);
        assert_eq!(src.series_len(), 16);
        let mut buf = vec![0.0; 16];
        src.read_into(2, &mut buf).unwrap();
        assert_eq!(&buf[..], ds.get(2));
        assert!(src.as_memory().is_some());
        assert!(src.read_into(4, &mut buf).is_err());
    }

    #[test]
    fn reference_forwarding_works() {
        let ds = sines(2, 8, 5);
        fn takes_source<S: RawSource>(s: S) -> usize {
            s.count()
        }
        assert_eq!(takes_source(&ds), 2);
    }

    #[test]
    fn flaky_source_fails_after_budget() {
        let ds = sines(4, 16, 3);
        let flaky = FlakySource::new(ds.clone(), 2);
        assert!(flaky.as_memory().is_none(), "must force the fallible path");
        let mut buf = vec![0.0f32; 16];
        flaky.read_into(0, &mut buf).unwrap();
        assert_eq!(&buf[..], ds.get(0));
        assert!(!flaky.tripped());
        flaky.read_into(3, &mut buf).unwrap();
        assert!(flaky.tripped());
        assert!(matches!(
            flaky.read_into(1, &mut buf),
            Err(StorageError::Io(_))
        ));
        // Once tripped, it stays tripped.
        assert!(flaky.read_into(0, &mut buf).is_err());
    }

    #[test]
    fn flaky_source_budget_is_shared_across_threads() {
        let flaky = FlakySource::new(sines(8, 8, 7), 100);
        let ok = std::sync::atomic::AtomicU64::new(0);
        std::thread::scope(|s| {
            for _ in 0..4 {
                let flaky = &flaky;
                let ok = &ok;
                s.spawn(move || {
                    let mut buf = vec![0.0f32; 8];
                    for pos in 0..50 {
                        if flaky.read_into(pos % 8, &mut buf).is_ok() {
                            ok.fetch_add(1, std::sync::atomic::Ordering::Relaxed);
                        }
                    }
                });
            }
        });
        assert_eq!(ok.load(std::sync::atomic::Ordering::Relaxed), 100);
        assert!(flaky.tripped());
    }
}
