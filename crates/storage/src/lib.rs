//! Storage substrate: the raw dataset file format, positioned and block
//! readers, the leaf store ParIS flushes subtree leaves into, and the
//! *device model* that stands in for the paper's HDD and SSD testbeds.
//!
//! # The device model
//!
//! The paper's on-disk results (Figs. 4, 8, 10, 11) hinge on device
//! characteristics: ParIS/ParIS+ exist to overlap CPU work with disk I/O,
//! and the HDD→SSD switch shifts query answering by an order of magnitude.
//! Re-running on arbitrary hardware (often with the dataset in page cache)
//! would erase exactly those effects, so all file I/O in this workspace is
//! charged to a [`device::Device`] with a configurable
//! [`device::DeviceProfile`]: a seek latency, read/write bandwidths, and
//! whether concurrent I/O serializes (HDD) or proceeds in parallel (SSD).
//! `DeviceProfile::UNTHROTTLED` turns the model off.

pub mod device;
pub mod error;
pub mod format;
pub mod leafstore;
pub mod metrics;
pub mod raw;
pub mod snapshot;

pub use device::{Device, DeviceProfile};
pub use error::StorageError;
pub use format::{read_dataset, write_dataset, DatasetFile, DatasetWriter};
pub use leafstore::{LeafHandle, LeafStoreReader, LeafStoreWriter};
pub use raw::{FlakySource, RawSource};
pub use snapshot::{SnapshotFingerprint, SnapshotReader, SnapshotWriter};
