//! The storage device model: deterministic latency/bandwidth throttling.
//!
//! Every read and write performed through this crate is *charged* to a
//! [`Device`]. The device computes how long the operation would have taken
//! on the modeled hardware and sleeps for the part the real machine didn't
//! spend. Profiles for a commodity HDD and a SATA SSD (ballpark figures
//! matching the paper's testbed era) are provided, plus an unthrottled
//! profile that disables the model.

use dsidx_obs::registry::{exponential_bounds, labeled_histogram, Histogram};
use parking_lot::Mutex;
use std::sync::atomic::{AtomicU64, Ordering};
use std::time::Duration;

/// Per-profile I/O histograms, shared by every device with the same
/// profile name (the registry dedups on the `profile` label).
#[derive(Debug, Clone, Copy)]
struct DeviceMetrics {
    read_nanos: &'static Histogram,
    write_nanos: &'static Histogram,
    read_bytes: &'static Histogram,
    write_bytes: &'static Histogram,
}

impl DeviceMetrics {
    fn for_profile(name: &'static str) -> Self {
        // 1us .. ~4s modeled latency, 64B .. ~256MB transfers.
        let latency = exponential_bounds(1_000, 4, 12);
        let bytes = exponential_bounds(64, 4, 12);
        Self {
            read_nanos: labeled_histogram(
                crate::metrics::DEVICE_READ_NANOS,
                "Modeled nanoseconds charged per device read",
                "profile",
                name,
                &latency,
            ),
            write_nanos: labeled_histogram(
                crate::metrics::DEVICE_WRITE_NANOS,
                "Modeled nanoseconds charged per device write",
                "profile",
                name,
                &latency,
            ),
            read_bytes: labeled_histogram(
                crate::metrics::DEVICE_READ_BYTES,
                "Bytes transferred per device read",
                "profile",
                name,
                &bytes,
            ),
            write_bytes: labeled_histogram(
                crate::metrics::DEVICE_WRITE_BYTES,
                "Bytes transferred per device write",
                "profile",
                name,
                &bytes,
            ),
        }
    }
}

/// Static characteristics of a modeled device.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct DeviceProfile {
    /// Human-readable name (shown in bench output).
    pub name: &'static str,
    /// Latency charged for every non-sequential access.
    pub seek_latency: Duration,
    /// Sequential read bandwidth in bytes/second (0 = unlimited).
    pub read_bandwidth: u64,
    /// Write bandwidth in bytes/second (0 = unlimited).
    pub write_bandwidth: u64,
    /// `true` if concurrent operations serialize (single actuator: HDD);
    /// `false` if they overlap (internal parallelism: SSD).
    pub serialize_io: bool,
}

impl DeviceProfile {
    /// No throttling: operations cost only what the real machine costs.
    pub const UNTHROTTLED: DeviceProfile = DeviceProfile {
        name: "unthrottled",
        seek_latency: Duration::ZERO,
        read_bandwidth: 0,
        write_bandwidth: 0,
        serialize_io: false,
    };

    /// A commodity 7200rpm hard disk: ~8.5 ms seek, ~160/140 MB/s.
    pub const HDD: DeviceProfile = DeviceProfile {
        name: "hdd",
        seek_latency: Duration::from_micros(8500),
        read_bandwidth: 160 * 1024 * 1024,
        write_bandwidth: 140 * 1024 * 1024,
        serialize_io: true,
    };

    /// A SATA SSD: ~90 us access latency, ~520/480 MB/s, parallel I/O.
    pub const SSD: DeviceProfile = DeviceProfile {
        name: "ssd",
        seek_latency: Duration::from_micros(90),
        read_bandwidth: 520 * 1024 * 1024,
        write_bandwidth: 480 * 1024 * 1024,
        serialize_io: false,
    };

    /// `true` when this profile never sleeps.
    #[must_use]
    pub fn is_unthrottled(&self) -> bool {
        self.seek_latency.is_zero() && self.read_bandwidth == 0 && self.write_bandwidth == 0
    }
}

/// Counters accumulated by a device (nanosecond sleep total included), for
/// bench reporting.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct DeviceStats {
    /// Bytes charged as reads.
    pub bytes_read: u64,
    /// Bytes charged as writes.
    pub bytes_written: u64,
    /// Number of accesses charged a seek.
    pub seeks: u64,
    /// Total modeled delay, in nanoseconds.
    pub charged_nanos: u64,
}

/// A throttling device instance. Shareable across threads (`Arc<Device>`);
/// all charging methods take `&self`.
#[derive(Debug)]
pub struct Device {
    profile: DeviceProfile,
    /// Expected next sequential offset, for seek detection.
    expected_offset: AtomicU64,
    /// Serializes sleeps when the profile demands it.
    io_lock: Mutex<()>,
    bytes_read: AtomicU64,
    bytes_written: AtomicU64,
    seeks: AtomicU64,
    charged_nanos: AtomicU64,
    metrics: DeviceMetrics,
}

/// Delays shorter than this accumulate instead of sleeping (sleep syscalls
/// have ~50 us granularity).
const SLEEP_THRESHOLD_NANOS: u64 = 200_000;

impl Device {
    /// Creates a device with the given profile.
    #[must_use]
    pub fn new(profile: DeviceProfile) -> Self {
        Self {
            profile,
            expected_offset: AtomicU64::new(u64::MAX),
            io_lock: Mutex::new(()),
            bytes_read: AtomicU64::new(0),
            bytes_written: AtomicU64::new(0),
            seeks: AtomicU64::new(0),
            charged_nanos: AtomicU64::new(0),
            metrics: DeviceMetrics::for_profile(profile.name),
        }
    }

    /// An unthrottled device.
    #[must_use]
    pub fn unthrottled() -> Self {
        Self::new(DeviceProfile::UNTHROTTLED)
    }

    /// The device's profile.
    #[must_use]
    pub fn profile(&self) -> &DeviceProfile {
        &self.profile
    }

    /// Charges a read of `bytes` starting at file `offset` (seek detection
    /// compares against the previous read's end).
    pub fn charge_read(&self, offset: u64, bytes: u64) {
        self.bytes_read.fetch_add(bytes, Ordering::Relaxed);
        if self.profile.is_unthrottled() {
            self.observe(self.metrics.read_bytes, bytes, self.metrics.read_nanos, 0);
            return;
        }
        let sequential = self.expected_offset.swap(offset + bytes, Ordering::Relaxed) == offset;
        let mut nanos = bandwidth_nanos(bytes, self.profile.read_bandwidth);
        if !sequential {
            self.seeks.fetch_add(1, Ordering::Relaxed);
            nanos += self.profile.seek_latency.as_nanos() as u64;
        }
        self.observe(
            self.metrics.read_bytes,
            bytes,
            self.metrics.read_nanos,
            nanos,
        );
        self.pay(nanos);
    }

    /// Charges a write of `bytes` (writes are modeled as bandwidth plus one
    /// seek per call: leaf flushes land at scattered file offsets).
    pub fn charge_write(&self, bytes: u64) {
        self.bytes_written.fetch_add(bytes, Ordering::Relaxed);
        if self.profile.is_unthrottled() {
            self.observe(self.metrics.write_bytes, bytes, self.metrics.write_nanos, 0);
            return;
        }
        self.seeks.fetch_add(1, Ordering::Relaxed);
        let nanos = bandwidth_nanos(bytes, self.profile.write_bandwidth)
            + self.profile.seek_latency.as_nanos() as u64;
        self.observe(
            self.metrics.write_bytes,
            bytes,
            self.metrics.write_nanos,
            nanos,
        );
        self.pay(nanos);
    }

    /// Charges a sequential append of `bytes` (no seek).
    pub fn charge_append(&self, bytes: u64) {
        self.bytes_written.fetch_add(bytes, Ordering::Relaxed);
        if self.profile.is_unthrottled() {
            self.observe(self.metrics.write_bytes, bytes, self.metrics.write_nanos, 0);
            return;
        }
        let nanos = bandwidth_nanos(bytes, self.profile.write_bandwidth);
        self.observe(
            self.metrics.write_bytes,
            bytes,
            self.metrics.write_nanos,
            nanos,
        );
        self.pay(nanos);
    }

    /// Records one I/O in the per-profile histograms when observability is
    /// on (one relaxed atomic load when it is off).
    #[inline]
    fn observe(&self, bytes_h: &Histogram, bytes: u64, nanos_h: &Histogram, nanos: u64) {
        if dsidx_obs::enabled() {
            bytes_h.observe(bytes);
            nanos_h.observe(nanos);
        }
    }

    fn pay(&self, nanos: u64) {
        if nanos == 0 {
            return;
        }
        self.charged_nanos.fetch_add(nanos, Ordering::Relaxed);
        // Each thread accumulates its own sub-threshold debt and pays it
        // itself — a shared pool would let one thread sleep on behalf of
        // others and break the SSD parallel-I/O model. (Debt is per-thread,
        // not per-device; engines drive one modeled device per experiment,
        // matching a single physical disk holding data + index.)
        thread_local! {
            static OWED: std::cell::Cell<u64> = const { std::cell::Cell::new(0) };
        }
        let owed = OWED.with(|c| {
            let total = c.get() + nanos;
            if total < SLEEP_THRESHOLD_NANOS {
                c.set(total);
                0
            } else {
                c.set(0);
                total
            }
        });
        if owed == 0 {
            return;
        }
        if self.profile.serialize_io {
            // Single actuator: concurrent operations queue behind each other.
            let _guard = self.io_lock.lock();
            precise_wait(Duration::from_nanos(owed));
        } else {
            precise_wait(Duration::from_nanos(owed));
        }
    }

    /// Snapshot of the accumulated counters.
    #[must_use]
    pub fn stats(&self) -> DeviceStats {
        DeviceStats {
            bytes_read: self.bytes_read.load(Ordering::Relaxed),
            bytes_written: self.bytes_written.load(Ordering::Relaxed),
            seeks: self.seeks.load(Ordering::Relaxed),
            charged_nanos: self.charged_nanos.load(Ordering::Relaxed),
        }
    }

    /// Resets counters and seek tracking (between experiment phases).
    pub fn reset_stats(&self) {
        self.bytes_read.store(0, Ordering::Relaxed);
        self.bytes_written.store(0, Ordering::Relaxed);
        self.seeks.store(0, Ordering::Relaxed);
        self.charged_nanos.store(0, Ordering::Relaxed);
        self.expected_offset.store(u64::MAX, Ordering::Relaxed);
    }
}

/// Waits for `d` with microsecond-level accuracy.
///
/// `thread::sleep` on this class of kernel oversleeps by ~1 ms regardless of
/// the request, which would swamp SSD-scale latencies (90 us). We measure
/// that overhead once, sleep for `d - overhead` (yielding the CPU for the
/// bulk of the wait, as a real blocked I/O would), and spin out the
/// remainder for accuracy.
fn precise_wait(d: Duration) {
    let deadline = std::time::Instant::now() + d;
    let margin = sleep_overhead();
    if d > margin {
        std::thread::sleep(d - margin);
    }
    while std::time::Instant::now() < deadline {
        std::hint::spin_loop();
    }
}

/// Measured fixed oversleep of `thread::sleep`, clamped to a sane range.
fn sleep_overhead() -> Duration {
    static OVERHEAD: std::sync::OnceLock<Duration> = std::sync::OnceLock::new();
    *OVERHEAD.get_or_init(|| {
        let mut worst = Duration::ZERO;
        for _ in 0..3 {
            let req = Duration::from_micros(100);
            let t0 = std::time::Instant::now();
            std::thread::sleep(req);
            worst = worst.max(t0.elapsed().saturating_sub(req));
        }
        // Add headroom: undershooting the margin turns into a long spin,
        // overshooting just spins slightly longer than needed.
        (worst * 2).clamp(Duration::from_micros(200), Duration::from_millis(5))
    })
}

fn bandwidth_nanos(bytes: u64, bandwidth: u64) -> u64 {
    if bandwidth == 0 {
        0
    } else {
        // bytes / (bytes/sec) in nanos, computed in u128 to avoid overflow.
        ((u128::from(bytes) * 1_000_000_000) / u128::from(bandwidth)) as u64
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::time::Instant;

    #[test]
    fn unthrottled_never_sleeps() {
        let d = Device::unthrottled();
        let t0 = Instant::now();
        for i in 0..1000 {
            d.charge_read(i * 4096, 4096);
            d.charge_write(4096);
        }
        assert!(t0.elapsed() < Duration::from_millis(100));
        let stats = d.stats();
        assert_eq!(stats.bytes_read, 1000 * 4096);
        assert_eq!(stats.bytes_written, 1000 * 4096);
        assert_eq!(stats.charged_nanos, 0);
    }

    #[test]
    fn sequential_reads_do_not_seek() {
        let d = Device::new(DeviceProfile::HDD);
        d.charge_read(0, 1024);
        d.charge_read(1024, 1024);
        d.charge_read(2048, 1024);
        // First read from "nowhere" counts as one seek; the rest are
        // sequential.
        assert_eq!(d.stats().seeks, 1);
    }

    #[test]
    fn random_reads_each_seek() {
        let d = Device::new(DeviceProfile::SSD);
        d.charge_read(0, 512);
        d.charge_read(100_000, 512);
        d.charge_read(5_000, 512);
        assert_eq!(d.stats().seeks, 3);
    }

    #[test]
    fn hdd_random_reads_cost_seek_latency() {
        let d = Device::new(DeviceProfile::HDD);
        let t0 = Instant::now();
        // 10 random 4K reads: ≥ 10 * 8.5ms = 85ms of modeled time.
        for i in 0..10u64 {
            d.charge_read(i * 10_000_000 + 1, 4096);
        }
        let elapsed = t0.elapsed();
        assert!(
            elapsed >= Duration::from_millis(70),
            "slept only {elapsed:?}"
        );
        assert!(d.stats().charged_nanos >= 80_000_000);
    }

    #[test]
    fn bandwidth_charging_scales_with_bytes() {
        let d = Device::new(DeviceProfile::HDD);
        let t0 = Instant::now();
        // 32 MiB sequential at 160 MiB/s ≈ 200ms.
        let block = 4 * 1024 * 1024u64;
        for i in 0..8 {
            d.charge_read(i * block, block);
        }
        let elapsed = t0.elapsed();
        assert!(
            elapsed >= Duration::from_millis(150),
            "slept only {elapsed:?}"
        );
        assert!(elapsed < Duration::from_millis(1500));
    }

    #[test]
    fn ssd_parallel_reads_overlap() {
        // 8 threads x 100 random reads on SSD: serialized this models
        // 800 * ~92us ≈ 74ms; with the SSD's parallel I/O each thread only
        // pays its own ~9ms. Assert well under half the serialized figure.
        // Scheduler noise when the whole workspace's tests saturate the
        // machine can stretch a single attempt, so the overlap is allowed
        // a few tries; it must show up in at least one.
        let d = Device::new(DeviceProfile::SSD);
        let mut last = Duration::ZERO;
        for _ in 0..3 {
            let t0 = Instant::now();
            std::thread::scope(|s| {
                for t in 0..8u64 {
                    let d = &d;
                    s.spawn(move || {
                        for i in 0..100u64 {
                            d.charge_read(t * 1_000_000 + i * 7919, 1024);
                        }
                    });
                }
            });
            last = t0.elapsed();
            if last < Duration::from_millis(37) {
                return;
            }
        }
        // The timing bound is only meaningful when threads can actually run
        // concurrently. On a single-CPU host (CI runners, constrained
        // containers) the 800 charge_read calls contend for one core and
        // the wall clock measures the scheduler, not the I/O model — the
        // model's own accounting above is still exercised, so don't fail.
        let cores = std::thread::available_parallelism().map_or(1, |n| n.get());
        assert!(cores < 2, "SSD reads serialized on {cores} cores: {last:?}");
    }

    #[test]
    fn small_charges_accumulate_instead_of_oversleeping() {
        let d = Device::new(DeviceProfile::SSD);
        let t0 = Instant::now();
        // 1000 x 1-byte sequential reads: bandwidth cost ~0; only the first
        // is a seek. Without accumulation this would sleep 1000 times.
        for i in 0..1000 {
            d.charge_read(i, 1);
        }
        assert!(t0.elapsed() < Duration::from_millis(60));
    }

    #[test]
    fn reset_clears_counters() {
        let d = Device::new(DeviceProfile::SSD);
        d.charge_read(0, 100);
        d.reset_stats();
        assert_eq!(d.stats(), DeviceStats::default());
    }
}
