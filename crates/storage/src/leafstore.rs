//! The leaf store: where ParIS/ParIS+ materialize subtree leaves.
//!
//! During on-disk index construction, finished subtrees flush their leaf
//! contents — `(iSAX word, raw-series position)` records — to this
//! append-only file "to free space in main memory" (§III). At query time
//! the approximate-answer descent reads one leaf back.
//!
//! File layout: 16-byte header (`magic`, `segments`), then fixed-size
//! records of `segments + 4` bytes (symbols, position u32 LE).

use crate::device::Device;
use crate::error::StorageError;
use dsidx_isax::Word;
use parking_lot::Mutex;
use std::fs::File;
use std::io::{BufWriter, Write};
use std::os::unix::fs::FileExt;
use std::path::Path;
use std::sync::Arc;

const MAGIC: [u8; 8] = *b"DSIDXLF1";
const HEADER_LEN: u64 = 16;

/// Locates a flushed leaf inside the store.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct LeafHandle {
    /// Byte offset of the first record.
    pub offset: u64,
    /// Number of records.
    pub count: u32,
}

/// Append side of the leaf store (used by IndexConstruction workers).
#[derive(Debug)]
pub struct LeafStoreWriter {
    inner: Mutex<WriterInner>,
    device: Arc<Device>,
    segments: usize,
    path: std::path::PathBuf,
}

#[derive(Debug)]
struct WriterInner {
    out: BufWriter<File>,
    next_offset: u64,
}

impl LeafStoreWriter {
    /// Creates/truncates a leaf store for words of `segments` segments.
    ///
    /// # Errors
    /// I/O failures; `segments` must be in `1..=16`.
    pub fn create(path: &Path, segments: usize, device: Arc<Device>) -> Result<Self, StorageError> {
        if segments == 0 || segments > dsidx_isax::MAX_SEGMENTS {
            return Err(StorageError::Corrupt(format!(
                "bad segment count {segments}"
            )));
        }
        let mut out = BufWriter::new(File::create(path)?);
        let mut header = [0u8; HEADER_LEN as usize];
        header[0..8].copy_from_slice(&MAGIC);
        header[8..12].copy_from_slice(&(segments as u32).to_le_bytes());
        out.write_all(&header)?;
        Ok(Self {
            inner: Mutex::new(WriterInner {
                out,
                next_offset: HEADER_LEN,
            }),
            device,
            segments,
            path: path.to_path_buf(),
        })
    }

    /// Appends one leaf's records; thread-safe. Returns where they landed.
    ///
    /// # Errors
    /// I/O failures.
    pub fn append(&self, entries: &[(Word, u32)]) -> Result<LeafHandle, StorageError> {
        let record = self.segments + 4;
        let mut buf = Vec::with_capacity(entries.len() * record);
        for (word, pos) in entries {
            debug_assert_eq!(word.segments(), self.segments);
            buf.extend_from_slice(word.symbols());
            buf.extend_from_slice(&pos.to_le_bytes());
        }
        let mut inner = self.inner.lock();
        let offset = inner.next_offset;
        inner.out.write_all(&buf)?;
        inner.next_offset += buf.len() as u64;
        drop(inner);
        // The store is append-only, so flushes are sequential writes: charge
        // bandwidth, not a seek per leaf (thousands of leaves per
        // generation would otherwise cost thousands of head movements that
        // a real append-only writer never makes).
        self.device.charge_append(buf.len() as u64);
        Ok(LeafHandle {
            offset,
            count: entries.len() as u32,
        })
    }

    /// Flushes and reopens the store for reading.
    ///
    /// # Errors
    /// I/O failures.
    pub fn finish(self) -> Result<LeafStoreReader, StorageError> {
        let inner = self.inner.into_inner();
        let mut out = inner.out;
        out.flush()?;
        drop(out);
        LeafStoreReader::open(&self.path, self.device)
    }
}

/// Read side of the leaf store (used by query answering).
///
/// The store may live in its own file (`base == 0`) or be embedded inside
/// a larger one — an index snapshot carries the whole store as one section
/// — in which case every stored offset is relative to `base`.
#[derive(Debug)]
pub struct LeafStoreReader {
    file: File,
    device: Arc<Device>,
    segments: usize,
    /// Byte position of the store's header within `file`.
    base: u64,
}

impl LeafStoreReader {
    /// Opens an existing leaf store file.
    ///
    /// # Errors
    /// Format violations and I/O failures.
    pub fn open(path: &Path, device: Arc<Device>) -> Result<Self, StorageError> {
        Self::open_within(path, 0, device)
    }

    /// Opens a leaf store embedded at byte `base` of a larger file (an
    /// index snapshot). [`LeafHandle`] offsets stay store-relative; reads
    /// add `base`.
    ///
    /// # Errors
    /// Format violations and I/O failures.
    pub fn open_within(path: &Path, base: u64, device: Arc<Device>) -> Result<Self, StorageError> {
        let file = File::open(path)?;
        let mut header = [0u8; HEADER_LEN as usize];
        device.charge_read(base, HEADER_LEN);
        file.read_exact_at(&mut header, base).map_err(|e| {
            if e.kind() == std::io::ErrorKind::UnexpectedEof {
                StorageError::Corrupt("leaf store shorter than header".into())
            } else {
                StorageError::Io(e)
            }
        })?;
        Self::from_parts(file, &header, base, device)
    }

    /// Opens a leaf store embedded at byte `base` of `path` whose bytes
    /// the caller has already read (and checksum-verified) — e.g. a
    /// snapshot section. Parses the header from `bytes` without touching
    /// the file again, so a sequential snapshot open stays sequential:
    /// no re-read, no modeled seek back to `base`. Query-time leaf reads
    /// are still charged through `device` as they happen.
    ///
    /// # Errors
    /// Format violations and I/O failures.
    pub fn from_verified_bytes(
        path: &Path,
        base: u64,
        bytes: &[u8],
        device: Arc<Device>,
    ) -> Result<Self, StorageError> {
        if (bytes.len() as u64) < HEADER_LEN {
            return Err(StorageError::Corrupt(
                "leaf store shorter than header".into(),
            ));
        }
        let file = File::open(path)?;
        Self::from_parts(file, &bytes[..HEADER_LEN as usize], base, device)
    }

    fn from_parts(
        file: File,
        header: &[u8],
        base: u64,
        device: Arc<Device>,
    ) -> Result<Self, StorageError> {
        if header[0..8] != MAGIC {
            return Err(StorageError::BadMagic);
        }
        let segments = u32::from_le_bytes(header[8..12].try_into().expect("slice of 4")) as usize;
        if segments == 0 || segments > dsidx_isax::MAX_SEGMENTS {
            return Err(StorageError::Corrupt(format!(
                "bad segment count {segments}"
            )));
        }
        Ok(Self {
            file,
            device,
            segments,
            base,
        })
    }

    /// Number of segments per stored word.
    #[must_use]
    pub fn segments(&self) -> usize {
        self.segments
    }

    /// Reads a flushed leaf back into `out` (cleared first); thread-safe.
    ///
    /// # Errors
    /// I/O failures (including truncated stores).
    pub fn read(&self, handle: LeafHandle, out: &mut Vec<(Word, u32)>) -> Result<(), StorageError> {
        let record = self.segments + 4;
        let bytes = handle.count as usize * record;
        let mut buf = vec![0u8; bytes];
        self.device
            .charge_read(self.base + handle.offset, bytes as u64);
        self.file
            .read_exact_at(&mut buf, self.base + handle.offset)?;
        out.clear();
        out.reserve(handle.count as usize);
        for rec in buf.chunks_exact(record) {
            let word = Word::new(&rec[..self.segments]);
            let pos = u32::from_le_bytes(rec[self.segments..].try_into().expect("slice of 4"));
            out.push((word, pos));
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tmp(name: &str) -> std::path::PathBuf {
        let dir = std::env::temp_dir().join(format!("dsidx-leaf-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        dir.join(name)
    }

    fn dev() -> Arc<Device> {
        Arc::new(Device::unthrottled())
    }

    fn word(seed: u8, segments: usize) -> Word {
        let symbols: Vec<u8> = (0..segments)
            .map(|i| seed.wrapping_add(i as u8 * 17))
            .collect();
        Word::new(&symbols)
    }

    #[test]
    fn append_and_read_round_trip() {
        let path = tmp("round.leaf");
        let w = LeafStoreWriter::create(&path, 16, dev()).unwrap();
        let leaf_a: Vec<(Word, u32)> = (0..10).map(|i| (word(i as u8, 16), i * 3)).collect();
        let leaf_b: Vec<(Word, u32)> = (0..5).map(|i| (word(i as u8 + 100, 16), i + 777)).collect();
        let ha = w.append(&leaf_a).unwrap();
        let hb = w.append(&leaf_b).unwrap();
        let r = w.finish().unwrap();
        let mut out = Vec::new();
        r.read(hb, &mut out).unwrap();
        assert_eq!(out, leaf_b);
        r.read(ha, &mut out).unwrap();
        assert_eq!(out, leaf_a);
    }

    #[test]
    fn empty_leaf_is_fine() {
        let path = tmp("empty.leaf");
        let w = LeafStoreWriter::create(&path, 4, dev()).unwrap();
        let h = w.append(&[]).unwrap();
        let r = w.finish().unwrap();
        let mut out = vec![(word(0, 4), 0)];
        r.read(h, &mut out).unwrap();
        assert!(out.is_empty());
    }

    #[test]
    fn concurrent_appends_do_not_interleave() {
        let path = tmp("conc.leaf");
        let w = LeafStoreWriter::create(&path, 8, dev()).unwrap();
        let handles: Vec<(usize, LeafHandle)> = std::thread::scope(|s| {
            let mut joins = Vec::new();
            for t in 0..8usize {
                let w = &w;
                joins.push(s.spawn(move || {
                    let entries: Vec<(Word, u32)> = (0..50)
                        .map(|i| (word((t * 50 + i) as u8, 8), (t * 50 + i) as u32))
                        .collect();
                    (t, w.append(&entries).unwrap())
                }));
            }
            joins.into_iter().map(|j| j.join().unwrap()).collect()
        });
        let r = w.finish().unwrap();
        let mut out = Vec::new();
        for (t, h) in handles {
            r.read(h, &mut out).unwrap();
            assert_eq!(out.len(), 50);
            for (i, (wd, pos)) in out.iter().enumerate() {
                assert_eq!(*pos, (t * 50 + i) as u32);
                assert_eq!(*wd, word((t * 50 + i) as u8, 8));
            }
        }
    }

    #[test]
    fn reader_rejects_foreign_files() {
        let path = tmp("foreign.leaf");
        std::fs::write(&path, b"WRONGMAGICxxxxxx").unwrap();
        assert!(matches!(
            LeafStoreReader::open(&path, dev()),
            Err(StorageError::BadMagic)
        ));
        let path = tmp("tiny.leaf");
        std::fs::write(&path, b"DS").unwrap();
        assert!(matches!(
            LeafStoreReader::open(&path, dev()),
            Err(StorageError::Corrupt(_))
        ));
    }

    #[test]
    fn truncated_store_errors_on_read() {
        let path = tmp("trunc.leaf");
        let w = LeafStoreWriter::create(&path, 8, dev()).unwrap();
        let entries: Vec<(Word, u32)> = (0..20).map(|i| (word(i as u8, 8), i)).collect();
        let h = w.append(&entries).unwrap();
        let _ = w.finish().unwrap();
        let full = std::fs::read(&path).unwrap();
        std::fs::write(&path, &full[..full.len() - 6]).unwrap();
        let r = LeafStoreReader::open(&path, dev()).unwrap();
        let mut out = Vec::new();
        assert!(r.read(h, &mut out).is_err());
    }

    #[test]
    fn embedded_store_reads_relative_to_base() {
        // Build a normal store, then splice its bytes into the middle of a
        // container file — the snapshot embedding case.
        let path = tmp("embed-src.leaf");
        let w = LeafStoreWriter::create(&path, 8, dev()).unwrap();
        let entries: Vec<(Word, u32)> = (0..15).map(|i| (word(i as u8, 8), i * 7)).collect();
        let h = w.append(&entries).unwrap();
        let _ = w.finish().unwrap();
        let store_bytes = std::fs::read(&path).unwrap();
        let container = tmp("embed-dst.bin");
        let mut bytes = vec![0xABu8; 100];
        bytes.extend_from_slice(&store_bytes);
        bytes.extend_from_slice(&[0xCD; 37]);
        std::fs::write(&container, &bytes).unwrap();
        let device = dev();
        let r = LeafStoreReader::open_within(&container, 100, Arc::clone(&device)).unwrap();
        assert_eq!(r.segments(), 8);
        let mut out = Vec::new();
        r.read(h, &mut out).unwrap();
        assert_eq!(out, entries);
        // Charging sees the absolute position, so seek modeling stays honest.
        assert_eq!(device.stats().bytes_read, 16 + 15 * 12);
        // A wrong base lands on garbage and is rejected, not misread.
        assert!(LeafStoreReader::open_within(&container, 0, dev()).is_err());
    }

    #[test]
    fn writes_are_charged() {
        let path = tmp("charged.leaf");
        let device = dev();
        let w = LeafStoreWriter::create(&path, 8, Arc::clone(&device)).unwrap();
        let entries: Vec<(Word, u32)> = (0..10).map(|i| (word(i as u8, 8), i)).collect();
        w.append(&entries).unwrap();
        assert_eq!(device.stats().bytes_written, 10 * 12);
    }
}
