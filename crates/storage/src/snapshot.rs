//! The persistent index snapshot container: a versioned, checksummed,
//! section-aligned single-file format.
//!
//! A snapshot is how a built index survives the process that built it:
//! `save` writes one, a later process `open`s it in milliseconds instead
//! of re-running a full tree construction. This module owns only the
//! *container* — header, fingerprint, section table, checksums; what goes
//! *in* the sections (node records, SAX words, leaf stores) is the
//! caller's business (`dsidx-tree::snapshot` defines those layouts).
//!
//! # File layout (all integers little-endian)
//!
//! ```text
//! offset  size  field
//! 0       8     magic  "DSIDXSN1"
//! 8       4     format version (currently 1)
//! 12      4     section count
//! 16      1     engine id          \
//! 17      1     segments            |  the fingerprint: enough to refuse
//! 18      2     reserved            |  opening a snapshot against the
//! 20      4     series length       |  wrong dataset or the wrong engine
//! 24      8     series count        |  before touching any section
//! 32      8     leaf capacity      /
//! 40      16    reserved
//! 56      8     checksum64 of bytes 0..56 ++ the section table
//! 64      32*n  section table: (id [8, ASCII], offset u64, len u64,
//!               checksum64 u64) per section
//! ...           section payloads, each aligned to a 64-byte boundary,
//!               zero-padded between; the file ends at the last payload
//!               byte (no tail padding), and the reader rejects any
//!               other length
//! ```
//!
//! Every byte of the file is covered by exactly one checksum: the header
//! and table by the header checksum, each section payload by its table
//! entry (padding is written as zeros and not covered — it carries no
//! information). `checksum64` is 64-bit FNV-1a folded over four
//! independent 8-byte-word lanes — fast enough to verify every section
//! on the open path. A flipped byte
//! anywhere that matters is therefore a structured
//! [`StorageError::ChecksumMismatch`], never a silently wrong index.
//!
//! # Versioning policy
//!
//! The version is a single gate: a reader refuses anything but its own
//! version ([`StorageError::BadVersion`]). Compatible evolution happens
//! *within* a version by adding sections (readers ignore ids they don't
//! know) and by the reserved header ranges, which writers must zero.
//! Anything else — record layout changes, checksum changes — bumps the
//! version, and old snapshots are rebuilt from raw data (builds are fast;
//! that is this codebase's whole point).

use crate::device::Device;
use crate::error::StorageError;
use std::fs::File;
use std::io::{BufWriter, Write};
use std::os::unix::fs::FileExt;
use std::path::{Path, PathBuf};
use std::sync::Arc;

const MAGIC: [u8; 8] = *b"DSIDXSN1";
/// The snapshot format version this build reads and writes.
pub const SNAPSHOT_VERSION: u32 = 1;
const HEADER_LEN: u64 = 64;
const TABLE_ENTRY_LEN: u64 = 32;
/// Section payloads start on multiples of this (a typical sector /
/// cache-line friendly boundary, and what a future mmap path would want).
pub const SECTION_ALIGN: u64 = 64;
/// Hard cap on sections — far above any real snapshot, so a corrupt count
/// can't drive a huge allocation before the checksum check.
const MAX_SECTIONS: u32 = 64;

/// The engine/geometry identity baked into a snapshot's header.
///
/// `open` compares this against the dataset and options it is handed and
/// refuses mismatches up front — the alternative is an index that answers
/// queries about the wrong data.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SnapshotFingerprint {
    /// Engine discriminant (the facade defines the mapping).
    pub engine: u8,
    /// iSAX segments per word.
    pub segments: u8,
    /// Points per series.
    pub series_len: u32,
    /// Number of series the index covers.
    pub count: u64,
    /// Leaf capacity the tree was built with.
    pub leaf_capacity: u64,
}

const FNV_BASIS: u64 = 0xcbf2_9ce4_8422_2325;
const FNV_PRIME: u64 = 0x0000_0100_0000_01B3;

/// Bytes per checksum block: four independent 8-byte FNV lanes.
const LANES: usize = 4;
const BLOCK: usize = LANES * 8;

#[inline]
fn fold_block(lanes: &mut [u64; LANES], block: &[u8]) {
    for (lane, word) in lanes.iter_mut().zip(block.chunks_exact(8)) {
        let word = u64::from_le_bytes(word.try_into().expect("slice of 8"));
        *lane = (*lane ^ word).wrapping_mul(FNV_PRIME);
    }
}

/// 64-bit FNV-1a restructured for the cold-start open path, which hashes
/// every section of a multi-megabyte snapshot: the stream is folded in
/// 32-byte blocks across four independent 8-byte-word FNV lanes (breaking
/// the one-multiply-per-byte dependency chain of textbook FNV-1a, ~20×
/// throughput), then the lanes are chained into one digest and trailing
/// bytes are absorbed byte-at-a-time. The properties that matter here
/// survive: dependency-free, and every fold is an xor followed by an
/// odd-prime multiply — a bijection — so no byte flip can cancel. It is an
/// integrity check, not an adversarial defense; an attacker who can
/// rewrite the file can rewrite the hash.
///
/// The digest depends only on the concatenated byte stream, never on how
/// it is split across `chunks` (partial blocks are carried over).
fn checksum64(chunks: &[&[u8]]) -> u64 {
    // Distinct lane seeds, so blocks with permuted words don't collide.
    let mut lanes = [0u64; LANES];
    for (i, lane) in lanes.iter_mut().enumerate() {
        *lane = FNV_BASIS.wrapping_add(i as u64);
    }
    let mut pending = [0u8; BLOCK];
    let mut pending_len = 0usize;
    for chunk in chunks {
        let mut rest = *chunk;
        if pending_len > 0 {
            let take = (BLOCK - pending_len).min(rest.len());
            pending[pending_len..pending_len + take].copy_from_slice(&rest[..take]);
            pending_len += take;
            rest = &rest[take..];
            if pending_len < BLOCK {
                // The chunk ran out before completing the block; the next
                // chunk (or the final tail pass) picks it up.
                continue;
            }
            fold_block(&mut lanes, &pending);
            // No reset needed: the unconditional tail assignment below
            // overwrites `pending_len` this same iteration.
        }
        let mut blocks = rest.chunks_exact(BLOCK);
        for block in &mut blocks {
            fold_block(&mut lanes, block);
        }
        let tail = blocks.remainder();
        pending[..tail.len()].copy_from_slice(tail);
        pending_len = tail.len();
    }
    let mut hash = FNV_BASIS;
    for lane in lanes {
        hash = (hash ^ lane).wrapping_mul(FNV_PRIME);
    }
    for &byte in &pending[..pending_len] {
        hash = (hash ^ u64::from(byte)).wrapping_mul(FNV_PRIME);
    }
    hash
}

fn align_up(offset: u64) -> u64 {
    offset.div_ceil(SECTION_ALIGN) * SECTION_ALIGN
}

fn encode_id(id: &str) -> [u8; 8] {
    assert!(
        !id.is_empty() && id.len() <= 8 && id.bytes().all(|b| b.is_ascii_graphic()),
        "section id must be 1..=8 printable ASCII bytes, got {id:?}"
    );
    let mut out = [0u8; 8];
    out[..id.len()].copy_from_slice(id.as_bytes());
    out
}

fn decode_id(bytes: &[u8; 8]) -> Result<String, StorageError> {
    let end = bytes.iter().position(|&b| b == 0).unwrap_or(8);
    if end == 0
        || !bytes[..end].iter().all(u8::is_ascii_graphic)
        || bytes[end..].iter().any(|&b| b != 0)
    {
        return Err(StorageError::Corrupt(format!(
            "malformed section id {bytes:?} in snapshot table"
        )));
    }
    Ok(String::from_utf8(bytes[..end].to_vec()).expect("ASCII is UTF-8"))
}

/// Accumulates sections, then writes the whole snapshot in one sequential
/// pass ([`SnapshotWriter::finish`]).
///
/// Sections are buffered in memory: a snapshot is the same order of size
/// as the index it serializes, which this codebase keeps resident anyway.
/// (Streaming section writes are the scale follow-up, alongside mmap
/// opens.)
#[derive(Debug)]
pub struct SnapshotWriter {
    path: PathBuf,
    device: Arc<Device>,
    fingerprint: SnapshotFingerprint,
    sections: Vec<(String, Vec<u8>)>,
}

impl SnapshotWriter {
    /// Starts a snapshot for the given identity. Nothing is written until
    /// [`finish`](SnapshotWriter::finish).
    #[must_use]
    pub fn new(path: &Path, fingerprint: SnapshotFingerprint, device: Arc<Device>) -> Self {
        Self {
            path: path.to_path_buf(),
            device,
            fingerprint,
            sections: Vec::new(),
        }
    }

    /// Adds a section.
    ///
    /// # Panics
    /// Panics on a malformed or duplicate id — section sets are static
    /// per engine, so either is a programming error, not a data error.
    pub fn section(&mut self, id: &str, bytes: Vec<u8>) {
        let _ = encode_id(id);
        assert!(
            self.sections.iter().all(|(existing, _)| existing != id),
            "duplicate snapshot section {id:?}"
        );
        assert!(
            self.sections.len() < MAX_SECTIONS as usize,
            "too many snapshot sections"
        );
        self.sections.push((id.to_string(), bytes));
    }

    /// Writes the file: header, section table, aligned payloads — one
    /// sequential pass, charged to the device as appends. Returns the
    /// total file size in bytes.
    ///
    /// # Errors
    /// I/O failures.
    pub fn finish(self) -> Result<u64, StorageError> {
        let n = self.sections.len() as u64;
        let table_len = n * TABLE_ENTRY_LEN;
        let mut table = Vec::with_capacity(table_len as usize);
        let mut offset = align_up(HEADER_LEN + table_len);
        for (id, bytes) in &self.sections {
            table.extend_from_slice(&encode_id(id));
            table.extend_from_slice(&offset.to_le_bytes());
            table.extend_from_slice(&(bytes.len() as u64).to_le_bytes());
            table.extend_from_slice(&checksum64(&[bytes]).to_le_bytes());
            offset = align_up(offset + bytes.len() as u64);
        }

        let mut header = [0u8; HEADER_LEN as usize];
        header[0..8].copy_from_slice(&MAGIC);
        header[8..12].copy_from_slice(&SNAPSHOT_VERSION.to_le_bytes());
        header[12..16].copy_from_slice(&(n as u32).to_le_bytes());
        let fp = &self.fingerprint;
        header[16] = fp.engine;
        header[17] = fp.segments;
        header[20..24].copy_from_slice(&fp.series_len.to_le_bytes());
        header[24..32].copy_from_slice(&fp.count.to_le_bytes());
        header[32..40].copy_from_slice(&fp.leaf_capacity.to_le_bytes());
        let head_sum = checksum64(&[&header[..56], &table]);
        header[56..64].copy_from_slice(&head_sum.to_le_bytes());

        let mut out = BufWriter::new(File::create(&self.path)?);
        out.write_all(&header)?;
        out.write_all(&table)?;
        let mut written = HEADER_LEN + table_len;
        for (_, bytes) in &self.sections {
            // Zero-length sections write nothing — padding up to their
            // (aligned) table offset would be uncheckable tail bytes if
            // they come last.
            if bytes.is_empty() {
                continue;
            }
            let aligned = align_up(written);
            out.write_all(&vec![0u8; (aligned - written) as usize])?;
            out.write_all(bytes)?;
            written = aligned + bytes.len() as u64;
        }
        // No padding after the final payload: the file ends on a
        // checksummed byte, so truncating or flipping the tail is always
        // detectable (and the reader enforces the exact length the table
        // implies).
        out.flush()?;
        self.device.charge_append(written);
        Ok(written)
    }
}

#[derive(Debug, Clone)]
struct SectionEntry {
    id: String,
    offset: u64,
    len: u64,
    checksum: u64,
}

/// An opened snapshot: validated header + section table, sections read on
/// demand with checksum verification.
#[derive(Debug)]
pub struct SnapshotReader {
    file: File,
    device: Arc<Device>,
    fingerprint: SnapshotFingerprint,
    sections: Vec<SectionEntry>,
    total_len: u64,
    /// End of the last charged read — when the next section starts within
    /// one alignment unit of it, the gap is just padding and the read is
    /// charged as a sequential continuation (padding bytes included),
    /// matching what a physical sequential scan of the file would do. A
    /// cold-start open reads sections in file order, so this keeps the
    /// device model from billing a full seek per 64-byte alignment gap.
    read_cursor: std::sync::atomic::AtomicU64,
}

impl SnapshotReader {
    /// Opens and validates a snapshot: magic, version, header/table
    /// checksum, and section bounds. Section payloads are *not* read yet.
    ///
    /// # Errors
    /// [`StorageError::BadMagic`] for foreign files,
    /// [`StorageError::BadVersion`] for other format versions,
    /// [`StorageError::ChecksumMismatch`]/[`StorageError::Corrupt`] for
    /// damaged files, and I/O failures.
    pub fn open(path: &Path, device: Arc<Device>) -> Result<Self, StorageError> {
        let file = File::open(path)?;
        let total_len = file.metadata()?.len();
        let mut header = [0u8; HEADER_LEN as usize];
        device.charge_read(0, HEADER_LEN);
        file.read_exact_at(&mut header, 0).map_err(|e| {
            if e.kind() == std::io::ErrorKind::UnexpectedEof {
                StorageError::Corrupt(format!(
                    "snapshot is {total_len} bytes, shorter than its {HEADER_LEN}-byte header"
                ))
            } else {
                StorageError::Io(e)
            }
        })?;
        if header[0..8] != MAGIC {
            return Err(StorageError::BadMagic);
        }
        let version = u32::from_le_bytes(header[8..12].try_into().expect("slice of 4"));
        if version != SNAPSHOT_VERSION {
            return Err(StorageError::BadVersion(version));
        }
        let n = u32::from_le_bytes(header[12..16].try_into().expect("slice of 4"));
        if n > MAX_SECTIONS {
            return Err(StorageError::Corrupt(format!(
                "snapshot claims {n} sections (limit {MAX_SECTIONS})"
            )));
        }
        let table_len = u64::from(n) * TABLE_ENTRY_LEN;
        let mut table = vec![0u8; table_len as usize];
        device.charge_read(HEADER_LEN, table_len);
        file.read_exact_at(&mut table, HEADER_LEN).map_err(|e| {
            if e.kind() == std::io::ErrorKind::UnexpectedEof {
                StorageError::Corrupt("snapshot truncated inside its section table".into())
            } else {
                StorageError::Io(e)
            }
        })?;
        let stored = u64::from_le_bytes(header[56..64].try_into().expect("slice of 8"));
        let computed = checksum64(&[&header[..56], &table]);
        if stored != computed {
            return Err(StorageError::ChecksumMismatch {
                section: "header".into(),
                stored,
                computed,
            });
        }
        let fingerprint = SnapshotFingerprint {
            engine: header[16],
            segments: header[17],
            series_len: u32::from_le_bytes(header[20..24].try_into().expect("slice of 4")),
            count: u64::from_le_bytes(header[24..32].try_into().expect("slice of 8")),
            leaf_capacity: u64::from_le_bytes(header[32..40].try_into().expect("slice of 8")),
        };
        let mut sections = Vec::with_capacity(n as usize);
        for entry in table.chunks_exact(TABLE_ENTRY_LEN as usize) {
            let id = decode_id(entry[0..8].try_into().expect("slice of 8"))?;
            let offset = u64::from_le_bytes(entry[8..16].try_into().expect("slice of 8"));
            let len = u64::from_le_bytes(entry[16..24].try_into().expect("slice of 8"));
            let checksum = u64::from_le_bytes(entry[24..32].try_into().expect("slice of 8"));
            if offset % SECTION_ALIGN != 0 {
                return Err(StorageError::Corrupt(format!(
                    "section `{id}` at unaligned offset {offset}"
                )));
            }
            // A zero-length section reads nothing, but its (aligned)
            // offset may legitimately sit just past the end of a file
            // whose last payload byte is unaligned — bound it loosely;
            // payload-bearing sections must fit entirely.
            let fits = if len == 0 {
                offset <= align_up(total_len)
            } else {
                offset.checked_add(len).is_some_and(|end| end <= total_len)
            };
            if !fits {
                return Err(StorageError::Corrupt(format!(
                    "section `{id}` spans bytes {offset}..{offset}+{len}, past the \
                     {total_len}-byte file (truncated?)"
                )));
            }
            if sections.iter().any(|s: &SectionEntry| s.id == id) {
                return Err(StorageError::Corrupt(format!("duplicate section `{id}`")));
            }
            sections.push(SectionEntry {
                id,
                offset,
                len,
                checksum,
            });
        }
        // The file must end exactly where the table says the last payload
        // byte is — the table is covered by the header checksum, so this
        // catches tail truncation *and* appended garbage, neither of which
        // any section checksum would see.
        let expected_len = sections
            .iter()
            .filter(|s| s.len > 0)
            .map(|s| s.offset + s.len)
            .max()
            .unwrap_or(HEADER_LEN + table_len);
        if total_len != expected_len {
            return Err(StorageError::Corrupt(format!(
                "snapshot is {total_len} bytes but its section table accounts for \
                 {expected_len} (truncated or trailing garbage?)"
            )));
        }
        Ok(Self {
            file,
            device,
            fingerprint,
            sections,
            total_len,
            read_cursor: std::sync::atomic::AtomicU64::new(HEADER_LEN + table_len),
        })
    }

    /// The identity the snapshot was saved with.
    #[must_use]
    pub fn fingerprint(&self) -> &SnapshotFingerprint {
        &self.fingerprint
    }

    /// Total file size in bytes.
    #[must_use]
    pub fn total_len(&self) -> u64 {
        self.total_len
    }

    /// Whether a section is present (unknown sections are ignored, known
    /// optional ones — like an embedded leaf store — are probed).
    #[must_use]
    pub fn has_section(&self, id: &str) -> bool {
        self.sections.iter().any(|s| s.id == id)
    }

    /// The `(offset, len)` of a section's payload within the file, for
    /// callers that read it in place (e.g. an embedded leaf store).
    #[must_use]
    pub fn section_range(&self, id: &str) -> Option<(u64, u64)> {
        self.sections
            .iter()
            .find(|s| s.id == id)
            .map(|s| (s.offset, s.len))
    }

    /// Reads and checksum-verifies a section's payload.
    ///
    /// # Errors
    /// [`StorageError::Corrupt`] if the section is absent,
    /// [`StorageError::ChecksumMismatch`] if its bytes changed since they
    /// were written, and I/O failures.
    pub fn read_section(&self, id: &str) -> Result<Vec<u8>, StorageError> {
        let entry = self
            .sections
            .iter()
            .find(|s| s.id == id)
            .ok_or_else(|| StorageError::Corrupt(format!("snapshot has no `{id}` section")))?;
        let mut bytes = vec![0u8; entry.len as usize];
        // ORDERING: the cursor is a bookkeeping aid for the device model,
        // not a synchronization point — Relaxed suffices; sections are
        // read from one thread during open.
        let cursor = self.read_cursor.swap(
            entry.offset + entry.len,
            std::sync::atomic::Ordering::Relaxed,
        );
        if entry.offset >= cursor && entry.offset - cursor < SECTION_ALIGN {
            // The gap is pure alignment padding: a sequential scan reads
            // straight through it, so charge one contiguous read (padding
            // included) rather than a seek per section.
            self.device
                .charge_read(cursor, (entry.offset - cursor) + entry.len);
        } else {
            self.device.charge_read(entry.offset, entry.len);
        }
        self.file.read_exact_at(&mut bytes, entry.offset)?;
        let computed = checksum64(&[&bytes]);
        if computed != entry.checksum {
            return Err(StorageError::ChecksumMismatch {
                section: id.to_string(),
                stored: entry.checksum,
                computed,
            });
        }
        Ok(bytes)
    }

    /// The device snapshot reads are charged to.
    #[must_use]
    pub fn device(&self) -> &Arc<Device> {
        &self.device
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tmp(name: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!("dsidx-snap-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        dir.join(name)
    }

    fn dev() -> Arc<Device> {
        Arc::new(Device::unthrottled())
    }

    fn fp() -> SnapshotFingerprint {
        SnapshotFingerprint {
            engine: 3,
            segments: 16,
            series_len: 256,
            count: 1000,
            leaf_capacity: 100,
        }
    }

    fn write_sample(path: &Path) -> u64 {
        let mut w = SnapshotWriter::new(path, fp(), dev());
        w.section("NODES", (0u8..200).collect());
        w.section("SAX", vec![7u8; 777]);
        w.section("EMPTY", Vec::new());
        w.finish().unwrap()
    }

    #[test]
    fn checksum64_depends_only_on_the_byte_stream() {
        // Chunk boundaries never matter — full blocks, partial blocks, and
        // blocks spanning three chunks all fold identically.
        let stream: Vec<u8> = (0u8..=255).cycle().take(1001).collect();
        let whole = checksum64(&[&stream]);
        for split in [1usize, 7, 8, 9, 31, 32, 33, 63, 64, 500, 1000] {
            let (a, b) = stream.split_at(split);
            assert_eq!(checksum64(&[a, b]), whole, "split at {split}");
            let (c, d) = b.split_at((b.len() / 3).max(1));
            assert_eq!(checksum64(&[a, c, d]), whole, "three chunks at {split}");
        }
        // Any single byte flip changes the digest, word-aligned or not.
        for at in [0usize, 3, 8, 15, 998, 1000] {
            let mut bad = stream.clone();
            bad[at] ^= 0x01;
            assert_ne!(checksum64(&[&bad]), whole, "flip at {at}");
        }
    }

    #[test]
    fn round_trips_sections_and_fingerprint() {
        let path = tmp("round.snap");
        let total = write_sample(&path);
        assert_eq!(total, std::fs::metadata(&path).unwrap().len());
        let r = SnapshotReader::open(&path, dev()).unwrap();
        assert_eq!(r.fingerprint(), &fp());
        assert_eq!(r.total_len(), total);
        assert_eq!(
            r.read_section("NODES").unwrap(),
            (0u8..200).collect::<Vec<_>>()
        );
        assert_eq!(r.read_section("SAX").unwrap(), vec![7u8; 777]);
        assert!(r.read_section("EMPTY").unwrap().is_empty());
        assert!(r.has_section("SAX") && !r.has_section("LEAF"));
        let (off, len) = r.section_range("SAX").unwrap();
        assert_eq!(off % SECTION_ALIGN, 0);
        assert_eq!(len, 777);
        let missing = r.read_section("LEAF").unwrap_err();
        assert!(missing.to_string().contains("no `LEAF` section"));
    }

    #[test]
    fn reads_are_charged_to_the_device() {
        let path = tmp("charged.snap");
        write_sample(&path);
        // A throttled profile, so sequential-vs-seek accounting is live
        // (the unthrottled device skips it). The payloads are tiny, so the
        // modeled delays stay in the microsecond debt window.
        let device = Arc::new(Device::new(crate::DeviceProfile::SSD));
        let r = SnapshotReader::open(&path, Arc::clone(&device)).unwrap();
        let after_open = device.stats().bytes_read;
        assert_eq!(after_open, HEADER_LEN + 3 * TABLE_ENTRY_LEN);
        // Sections read in file order charge one contiguous stream —
        // alignment padding included, and never a seek: header at 0, table
        // at 64, then each padded section picks up where the last read
        // ended. NODES sits at align_up(160) = 192 (32 padding bytes) and
        // SAX at align_up(192 + 200) = 448 (56 padding bytes).
        r.read_section("NODES").unwrap();
        assert_eq!(device.stats().bytes_read, after_open + 32 + 200);
        r.read_section("SAX").unwrap();
        assert_eq!(device.stats().bytes_read, after_open + 32 + 200 + 56 + 777);
        // One seek total: the initial positioning to offset 0. Everything
        // after is one sequential scan.
        assert_eq!(
            device.stats().seeks,
            1,
            "a cold-start open is one sequential scan"
        );
        // An out-of-order re-read is *not* sequential: it charges exactly
        // the payload, and pays a real seek.
        r.read_section("NODES").unwrap();
        assert_eq!(
            device.stats().bytes_read,
            after_open + 32 + 200 + 56 + 777 + 200
        );
        assert_eq!(device.stats().seeks, 2);
    }

    #[test]
    fn foreign_and_future_files_are_refused() {
        let path = tmp("foreign.snap");
        std::fs::write(&path, vec![0x42u8; 128]).unwrap();
        assert!(matches!(
            SnapshotReader::open(&path, dev()),
            Err(StorageError::BadMagic)
        ));
        // A valid file with a bumped version: BadVersion, not a checksum
        // error — the version gate comes first so the message is clear.
        let path = tmp("future.snap");
        write_sample(&path);
        let mut bytes = std::fs::read(&path).unwrap();
        bytes[8..12].copy_from_slice(&9u32.to_le_bytes());
        std::fs::write(&path, &bytes).unwrap();
        match SnapshotReader::open(&path, dev()) {
            Err(StorageError::BadVersion(9)) => {}
            other => panic!("expected BadVersion(9), got {other:?}"),
        }
    }

    #[test]
    fn truncation_is_structured() {
        let path = tmp("trunc.snap");
        write_sample(&path);
        let full = std::fs::read(&path).unwrap();
        // Truncated inside the last section: table validation catches it.
        std::fs::write(&path, &full[..full.len() - 40]).unwrap();
        match SnapshotReader::open(&path, dev()) {
            Err(StorageError::Corrupt(msg)) => assert!(msg.contains("truncated"), "{msg}"),
            other => panic!("expected Corrupt, got {other:?}"),
        }
        // Truncated inside the header.
        std::fs::write(&path, &full[..30]).unwrap();
        assert!(matches!(
            SnapshotReader::open(&path, dev()),
            Err(StorageError::Corrupt(_))
        ));
    }

    #[test]
    fn every_meaningful_byte_flip_is_caught() {
        let path = tmp("flip.snap");
        write_sample(&path);
        let good = std::fs::read(&path).unwrap();
        for i in 0..good.len() {
            let mut bytes = good.clone();
            bytes[i] ^= 0x10;
            std::fs::write(&path, &bytes).unwrap();
            let outcome = SnapshotReader::open(&path, dev()).and_then(|r| {
                for id in ["NODES", "SAX", "EMPTY"] {
                    let _ = r.read_section(id)?;
                }
                Ok(())
            });
            if outcome.is_ok() {
                // Only inter-section alignment padding is uncovered; it
                // carries no data.
                let original = good[i];
                assert_eq!(original, 0, "undetected flip of data byte at {i}");
            }
        }
        std::fs::write(&path, &good).unwrap();
    }

    #[test]
    #[should_panic(expected = "duplicate snapshot section")]
    fn duplicate_section_ids_panic() {
        let mut w = SnapshotWriter::new(&tmp("dup.snap"), fp(), dev());
        w.section("A", vec![]);
        w.section("A", vec![]);
    }

    #[test]
    #[should_panic(expected = "section id")]
    fn overlong_section_ids_panic() {
        let mut w = SnapshotWriter::new(&tmp("longid.snap"), fp(), dev());
        w.section("WAYTOOLONGID", vec![]);
    }
}
