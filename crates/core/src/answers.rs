//! The query plane's response half: [`Answers`].

use dsidx_query::{BatchStats, QueryStats};
use dsidx_series::Match;

/// Everything one [`search`](crate::Search::search) call produced: one
/// match list per query (index-aligned with the request's queries, each
/// sorted ascending by `(distance, position)`), plus the
/// [`BatchStats`] when the spec asked for them.
///
/// ```
/// use dsidx::prelude::*;
///
/// let data = DatasetKind::Synthetic.generate(300, 64, 7);
/// let queries = DatasetKind::Synthetic.queries(3, 64, 7);
/// let index = MemoryIndex::build(data, Engine::Ads, &Options::default()).unwrap();
///
/// let batch: Vec<&[f32]> = queries.iter().collect();
/// let answers = index.search(&batch, &QuerySpec::knn(4).with_stats()).unwrap();
/// assert_eq!(answers.len(), 3);
/// for per_query in answers.matches() {
///     assert_eq!(per_query.len(), 4);
/// }
/// // Per-query counters come back through the same response.
/// assert!(answers.query_stats(0).unwrap().real_computed > 0);
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct Answers {
    matches: Vec<Vec<Match>>,
    stats: Option<BatchStats>,
}

impl Answers {
    /// Packages a dispatch result (facade-internal).
    pub(crate) fn new(matches: Vec<Vec<Match>>, stats: Option<BatchStats>) -> Self {
        Self { matches, stats }
    }

    /// Number of queries answered.
    #[must_use]
    pub fn len(&self) -> usize {
        self.matches.len()
    }

    /// `true` for a response to zero queries (never produced by
    /// [`search`](crate::Search::search), which rejects empty batches).
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.matches.is_empty()
    }

    /// The per-query match lists, index-aligned with the request.
    #[must_use]
    pub fn matches(&self) -> &[Vec<Match>] {
        &self.matches
    }

    /// Consumes the response into the per-query match lists.
    #[must_use]
    pub fn into_matches(self) -> Vec<Vec<Match>> {
        self.matches
    }

    /// Query `i`'s best match, if it has one (`None` past the end of the
    /// batch or when the collection was empty).
    #[must_use]
    pub fn best(&self, i: usize) -> Option<&Match> {
        self.matches.get(i)?.first()
    }

    /// The batch-of-one view: the single query's matches.
    ///
    /// # Panics
    /// Panics if the response holds more than one query's answers.
    #[must_use]
    pub fn single(&self) -> &[Match] {
        assert_eq!(self.matches.len(), 1, "batch of one");
        &self.matches[0]
    }

    /// Consumes a batch-of-one response into the single query's matches.
    ///
    /// # Panics
    /// Panics if the response holds more than one query's answers.
    #[must_use]
    pub fn into_single(mut self) -> Vec<Match> {
        assert_eq!(self.matches.len(), 1, "batch of one");
        self.matches.pop().expect("one query")
    }

    /// Consumes a batch-of-one response into its best match (`None` when
    /// the collection was empty) — the 1-NN view.
    ///
    /// # Panics
    /// Panics if the response holds more than one query's answers.
    #[must_use]
    pub fn into_nn(self) -> Option<Match> {
        self.into_single().into_iter().next()
    }

    /// The batch work counters, when the spec requested them
    /// ([`QuerySpec::with_stats`](crate::QuerySpec::with_stats)).
    #[must_use]
    pub fn stats(&self) -> Option<&BatchStats> {
        self.stats.as_ref()
    }

    /// Query `i`'s counters including its share of the batch-level work —
    /// `None` without [`with_stats`](crate::QuerySpec::with_stats) or past
    /// the end of the batch.
    #[must_use]
    pub fn query_stats(&self, i: usize) -> Option<QueryStats> {
        let stats = self.stats.as_ref()?;
        (i < self.matches.len()).then(|| stats.query_stats(i))
    }

    /// Wall-time-per-phase view of the whole call: the batch-level phase
    /// times plus every query's own — `None` without
    /// [`with_stats`](crate::QuerySpec::with_stats). All zeros when the
    /// observability plane is disabled (`DSIDX_NO_OBS`).
    #[must_use]
    pub fn phase_breakdown(&self) -> Option<dsidx_obs::phase::PhaseBreakdown> {
        let stats = self.stats.as_ref()?;
        let mut phase = stats.shared.phase;
        for q in &stats.per_query {
            phase = phase.merged(&q.phase);
        }
        Some(phase)
    }

    /// Consumes a batch-of-one response into `(matches, stats)` — the
    /// shape of the legacy `*_with_stats` methods.
    ///
    /// # Panics
    /// Panics if the response holds more than one query's answers or was
    /// produced without [`with_stats`](crate::QuerySpec::with_stats).
    #[must_use]
    pub fn into_single_with_stats(self) -> (Vec<Match>, QueryStats) {
        let (mut matches, stats) = self.into_parts_with_stats();
        assert_eq!(matches.len(), 1, "batch of one");
        (matches.pop().expect("one query"), stats.into_single())
    }

    /// Consumes the response into `(per-query matches, batch stats)`.
    ///
    /// # Panics
    /// Panics if the response was produced without
    /// [`with_stats`](crate::QuerySpec::with_stats).
    #[must_use]
    pub fn into_parts_with_stats(self) -> (Vec<Vec<Match>>, BatchStats) {
        let stats = self.stats.expect("spec requested stats");
        (self.matches, stats)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Answers {
        Answers::new(
            vec![vec![Match::new(3, 1.0), Match::new(7, 2.0)], vec![]],
            Some(BatchStats {
                broadcasts: 1,
                per_query: vec![QueryStats::default(), QueryStats::default()],
                ..BatchStats::default()
            }),
        )
    }

    #[test]
    fn accessors_view_the_right_slices() {
        let a = sample();
        assert_eq!(a.len(), 2);
        assert!(!a.is_empty());
        assert_eq!(a.best(0), Some(&Match::new(3, 1.0)));
        assert_eq!(a.best(1), None);
        assert_eq!(a.best(9), None);
        assert!(a.stats().is_some());
        assert!(a.query_stats(1).is_some());
        assert!(a.query_stats(2).is_none());
        let (m, s) = a.into_parts_with_stats();
        assert_eq!(m.len(), 2);
        assert_eq!(s.broadcasts, 1);
    }

    #[test]
    fn single_views_require_a_batch_of_one() {
        let a = Answers::new(vec![vec![Match::new(5, 0.5)]], None);
        assert_eq!(a.single(), &[Match::new(5, 0.5)]);
        assert_eq!(a.clone().into_single(), vec![Match::new(5, 0.5)]);
        assert_eq!(a.into_nn(), Some(Match::new(5, 0.5)));
        let empty_collection = Answers::new(vec![vec![]], None);
        assert_eq!(empty_collection.into_nn(), None);
    }

    #[test]
    #[should_panic(expected = "batch of one")]
    fn single_on_a_larger_batch_panics() {
        let _ = sample().single();
    }

    #[test]
    #[should_panic(expected = "requested stats")]
    fn parts_with_stats_requires_stats() {
        let _ = Answers::new(vec![vec![]], None).into_parts_with_stats();
    }

    #[test]
    fn query_stats_without_stats_is_none() {
        let a = Answers::new(vec![vec![]], None);
        assert!(a.stats().is_none());
        assert!(a.query_stats(0).is_none());
    }
}
