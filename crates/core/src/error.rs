//! The facade error type.

use std::fmt;

/// Any error the facade can surface.
///
/// Marked `#[non_exhaustive]`: new failure classes may appear as the query
/// plane grows, so downstream `match`es need a catch-all arm.
#[derive(Debug)]
#[non_exhaustive]
pub enum Error {
    /// Invalid iSAX / index configuration.
    Config(dsidx_isax::IsaxError),
    /// Storage-layer failure (I/O, format, device).
    Storage(dsidx_storage::StorageError),
    /// Series-level validation failure.
    Series(dsidx_series::SeriesError),
    /// The requested operation does not apply to the chosen engine.
    Unsupported(&'static str),
    /// A [`QuerySpec`](crate::QuerySpec) (or its queries) failed
    /// validation before any engine ran — the structured form of
    /// query-time misuse (`k == 0`, an over-wide DTW band, an empty
    /// batch, a query of the wrong length).
    InvalidSpec(InvalidSpec),
}

/// Why a [`QuerySpec`](crate::QuerySpec) was rejected at the query plane,
/// before reaching any engine.
///
/// Marked `#[non_exhaustive]`: validation grows with the spec's axes.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[non_exhaustive]
pub enum InvalidSpec {
    /// `k == 0`: an exact or approximate k-NN request must ask for at
    /// least one neighbor.
    ZeroK,
    /// A DTW band at least as wide as the series: every alignment is
    /// already admissible at `series_len - 1`, so wider bands are a
    /// misconfiguration (typically a percentage/points mix-up).
    BandTooWide {
        /// The requested Sakoe-Chiba half-width.
        band: usize,
        /// The indexed series length.
        series_len: usize,
    },
    /// `search` was called with zero queries; a request must carry at
    /// least one (single-query callers pass a batch of one).
    EmptyBatch,
    /// A query's length differs from the indexed series length.
    QueryLength {
        /// The indexed series length.
        expected: usize,
        /// The offending query's length.
        got: usize,
        /// Index of the offending query within the batch.
        index: usize,
    },
}

impl fmt::Display for InvalidSpec {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            InvalidSpec::ZeroK => {
                write!(f, "k must be at least 1 (use QuerySpec::nn() for 1-NN)")
            }
            InvalidSpec::BandTooWide { band, series_len } => write!(
                f,
                "DTW band {band} must be smaller than the series length {series_len} \
                 (a 5% Sakoe-Chiba band over length {series_len} is band {})",
                series_len / 20
            ),
            InvalidSpec::EmptyBatch => write!(
                f,
                "the query batch is empty; pass at least one query (single-query \
                 callers pass a batch of one: &[query])"
            ),
            InvalidSpec::QueryLength {
                expected,
                got,
                index,
            } => write!(
                f,
                "query {index} has length {got} but the index holds series of \
                 length {expected}; re-sample or re-slice the query to match"
            ),
        }
    }
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Error::Config(e) => write!(f, "configuration error: {e}"),
            Error::Storage(e) => write!(f, "storage error: {e}"),
            Error::Series(e) => write!(f, "series error: {e}"),
            Error::Unsupported(what) => write!(f, "unsupported operation: {what}"),
            Error::InvalidSpec(e) => write!(f, "invalid query spec: {e}"),
        }
    }
}

impl std::error::Error for Error {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            Error::Config(e) => Some(e),
            Error::Storage(e) => Some(e),
            Error::Series(e) => Some(e),
            Error::Unsupported(_) | Error::InvalidSpec(_) => None,
        }
    }
}

impl From<dsidx_isax::IsaxError> for Error {
    fn from(e: dsidx_isax::IsaxError) -> Self {
        Error::Config(e)
    }
}

impl From<dsidx_storage::StorageError> for Error {
    fn from(e: dsidx_storage::StorageError) -> Self {
        Error::Storage(e)
    }
}

impl From<dsidx_series::SeriesError> for Error {
    fn from(e: dsidx_series::SeriesError) -> Self {
        Error::Series(e)
    }
}

impl From<InvalidSpec> for Error {
    fn from(e: InvalidSpec) -> Self {
        Error::InvalidSpec(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn displays_and_sources() {
        use std::error::Error as _;
        let e: Error = dsidx_isax::IsaxError::BadSegmentCount { requested: 0 }.into();
        assert!(e.to_string().contains("configuration"));
        assert!(e.source().is_some());
        let e = Error::Unsupported("dtw on this engine");
        assert!(e.to_string().contains("dtw"));
        assert!(e.source().is_none());
        let e: Error = dsidx_series::SeriesError::EmptySeries.into();
        assert!(e.to_string().contains("series"));
        let e: Error = dsidx_storage::StorageError::BadMagic.into();
        assert!(e.to_string().contains("storage"));
    }

    #[test]
    fn invalid_spec_messages_are_actionable() {
        let e: Error = InvalidSpec::ZeroK.into();
        assert!(e.to_string().contains("at least 1"));
        let e: Error = InvalidSpec::BandTooWide {
            band: 300,
            series_len: 256,
        }
        .into();
        let text = e.to_string();
        assert!(text.contains("300") && text.contains("256"));
        let e: Error = InvalidSpec::EmptyBatch.into();
        assert!(e.to_string().contains("at least one query"));
        let e: Error = InvalidSpec::QueryLength {
            expected: 256,
            got: 128,
            index: 3,
        }
        .into();
        let text = e.to_string();
        assert!(text.contains("query 3") && text.contains("128") && text.contains("256"));
        assert!(std::error::Error::source(&e).is_none());
    }
}
