//! The facade error type.

use std::fmt;

/// Any error the facade can surface.
#[derive(Debug)]
pub enum Error {
    /// Invalid iSAX / index configuration.
    Config(dsidx_isax::IsaxError),
    /// Storage-layer failure (I/O, format, device).
    Storage(dsidx_storage::StorageError),
    /// Series-level validation failure.
    Series(dsidx_series::SeriesError),
    /// The requested operation does not apply to the chosen engine.
    Unsupported(&'static str),
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Error::Config(e) => write!(f, "configuration error: {e}"),
            Error::Storage(e) => write!(f, "storage error: {e}"),
            Error::Series(e) => write!(f, "series error: {e}"),
            Error::Unsupported(what) => write!(f, "unsupported operation: {what}"),
        }
    }
}

impl std::error::Error for Error {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            Error::Config(e) => Some(e),
            Error::Storage(e) => Some(e),
            Error::Series(e) => Some(e),
            Error::Unsupported(_) => None,
        }
    }
}

impl From<dsidx_isax::IsaxError> for Error {
    fn from(e: dsidx_isax::IsaxError) -> Self {
        Error::Config(e)
    }
}

impl From<dsidx_storage::StorageError> for Error {
    fn from(e: dsidx_storage::StorageError) -> Self {
        Error::Storage(e)
    }
}

impl From<dsidx_series::SeriesError> for Error {
    fn from(e: dsidx_series::SeriesError) -> Self {
        Error::Series(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn displays_and_sources() {
        use std::error::Error as _;
        let e: Error = dsidx_isax::IsaxError::BadSegmentCount { requested: 0 }.into();
        assert!(e.to_string().contains("configuration"));
        assert!(e.source().is_some());
        let e = Error::Unsupported("dtw on this engine");
        assert!(e.to_string().contains("dtw"));
        assert!(e.source().is_none());
        let e: Error = dsidx_series::SeriesError::EmptySeries.into();
        assert!(e.to_string().contains("series"));
        let e: Error = dsidx_storage::StorageError::BadMagic.into();
        assert!(e.to_string().contains("storage"));
    }
}
