//! Convenience re-exports for application code.

pub use crate::engine::{DiskIndex, Engine, MemoryIndex};
pub use crate::error::Error;
pub use crate::options::Options;
pub use dsidx_query::{BatchStats, QueryStats};
pub use dsidx_series::gen::DatasetKind;
pub use dsidx_series::{DataSeries, Dataset, Match};
pub use dsidx_storage::{Device, DeviceProfile};
