//! Convenience re-exports for application code.

pub use crate::answers::Answers;
pub use crate::engine::{DiskIndex, Engine, MemoryIndex};
pub use crate::error::{Error, InvalidSpec};
pub use crate::options::Options;
pub use crate::search::Search;
pub use crate::shard::ShardedIndex;
pub use crate::spec::{Fidelity, Measure, QuerySpec};
pub use dsidx_query::{BatchStats, QueryStats};
pub use dsidx_series::gen::DatasetKind;
pub use dsidx_series::{DataSeries, Dataset, Match};
pub use dsidx_storage::{Device, DeviceProfile};
