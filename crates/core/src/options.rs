//! Tuning knobs shared by every engine.

use crate::error::Error;
use dsidx_tree::TreeConfig;

/// Index/build/query options. `Default` reproduces the paper's settings at
/// laptop scale: 16 segments, leaf capacity 100, all cores.
#[derive(Debug, Clone)]
pub struct Options {
    /// iSAX segments (`w`); the paper fixes 16.
    pub segments: usize,
    /// Maximum leaf size before splitting.
    pub leaf_capacity: usize,
    /// Worker threads (0 = all available cores).
    pub threads: usize,
    /// Series per sequential read block (on-disk engines).
    pub block_series: usize,
    /// Series per generation — the modeled memory budget (on-disk engines).
    pub generation_series: usize,
    /// Priority queues for MESSI queries (0 = one per thread).
    pub queues: usize,
}

impl Default for Options {
    fn default() -> Self {
        Self {
            segments: dsidx_isax::DEFAULT_SEGMENTS,
            leaf_capacity: 100,
            threads: 0,
            block_series: 1024,
            generation_series: 16 * 1024,
            queues: 0,
        }
    }
}

impl Options {
    /// Resolved thread count.
    #[must_use]
    pub fn effective_threads(&self) -> usize {
        if self.threads > 0 {
            return self.threads;
        }
        std::thread::available_parallelism().map_or(1, std::num::NonZeroUsize::get)
    }

    /// Sets the thread count (builder style).
    #[must_use]
    pub fn with_threads(mut self, threads: usize) -> Self {
        self.threads = threads;
        self
    }

    /// Sets the leaf capacity (builder style).
    #[must_use]
    pub fn with_leaf_capacity(mut self, leaf_capacity: usize) -> Self {
        self.leaf_capacity = leaf_capacity;
        self
    }

    /// Sets the segment count (builder style).
    #[must_use]
    pub fn with_segments(mut self, segments: usize) -> Self {
        self.segments = segments;
        self
    }

    /// Builds the tree configuration for a given series length.
    ///
    /// # Errors
    /// Propagates configuration validation errors.
    pub fn tree_config(&self, series_len: usize) -> Result<TreeConfig, Error> {
        Ok(TreeConfig::new(
            series_len,
            self.segments,
            self.leaf_capacity,
        )?)
    }

    pub(crate) fn paris_config(
        &self,
        series_len: usize,
    ) -> Result<dsidx_paris::ParisConfig, Error> {
        Ok(
            dsidx_paris::ParisConfig::new(self.tree_config(series_len)?, self.effective_threads())
                .with_block_series(self.block_series)
                .with_generation_series(self.generation_series.max(self.block_series)),
        )
    }

    pub(crate) fn messi_config(
        &self,
        series_len: usize,
    ) -> Result<dsidx_messi::MessiConfig, Error> {
        Ok(
            dsidx_messi::MessiConfig::new(self.tree_config(series_len)?, self.effective_threads())
                .with_queues(self.queues),
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_are_papers() {
        let o = Options::default();
        assert_eq!(o.segments, 16);
        assert!(o.effective_threads() >= 1);
    }

    #[test]
    fn builders_apply() {
        let o = Options::default()
            .with_threads(3)
            .with_leaf_capacity(7)
            .with_segments(8);
        assert_eq!(o.effective_threads(), 3);
        assert_eq!(o.leaf_capacity, 7);
        let tc = o.tree_config(64).unwrap();
        assert_eq!(tc.segments(), 8);
        assert_eq!(tc.leaf_capacity(), 7);
    }

    #[test]
    fn invalid_config_errors() {
        let o = Options::default().with_segments(99);
        assert!(o.tree_config(256).is_err());
        let o = Options::default();
        assert!(o.tree_config(4).is_err(), "series shorter than segments");
    }
}
