//! # dsidx — parallel data series indexing
//!
//! A from-scratch Rust implementation of the systems in *“Data Series
//! Indexing Gone Parallel”* (Peng, ICDE 2020 PhD Symposium): the **ParIS**
//! and **ParIS+** on-disk parallel iSAX indices, the **MESSI** in-memory
//! parallel index, and their evaluation baselines (**ADS+**-style serial
//! index, **UCR Suite** serial/parallel scans), over a storage substrate
//! with simulated HDD/SSD device profiles.
//!
//! ## Quickstart
//!
//! Every query is one [`Search::search`] call shaped by a [`QuerySpec`]:
//! how many neighbors, which [`Measure`], which [`Fidelity`], stats or
//! not. Batches are the native shape — a single query is a batch of one.
//!
//! ```
//! use dsidx::prelude::*;
//!
//! // 100K random-walk series of length 256 at paper scale; small here.
//! let data = DatasetKind::Synthetic.generate(2_000, 128, 42);
//! let query = DatasetKind::Synthetic.queries(1, 128, 42);
//!
//! // Build an in-memory MESSI index and answer an exact 1-NN query.
//! let index = MemoryIndex::build(data, Engine::Messi, &Options::default()).unwrap();
//! let hit = index
//!     .search(&[query.get(0)], &QuerySpec::nn())
//!     .unwrap()
//!     .into_nn()
//!     .expect("non-empty");
//! println!("nearest series: #{} at distance {}", hit.pos, hit.dist());
//!
//! // Exact k-NN from the same index: the 10 nearest, sorted ascending by
//! // (distance, position); `QuerySpec::nn()` is the k = 1 special case.
//! let top10 = index
//!     .search(&[query.get(0)], &QuerySpec::knn(10))
//!     .unwrap()
//!     .into_single();
//! assert_eq!(top10.len(), 10);
//! assert_eq!(top10[0], hit);
//!
//! // The same index answers DTW queries (Sakoe-Chiba band of 5%) — a
//! // measure is one builder call, not another method family.
//! let spec = QuerySpec::nn().measure(Measure::Dtw { band: 128 / 20 });
//! let warped = index
//!     .search(&[query.get(0)], &spec)
//!     .unwrap()
//!     .into_nn()
//!     .expect("non-empty");
//! assert!(warped.dist_sq <= hit.dist_sq + 1e-3);
//! ```
//!
//! ## Crate map
//!
//! The facade re-exports the underlying crates as modules:
//!
//! * [`series`] — datasets, z-normalization, distances (SIMD ED, DTW),
//!   generators for the paper's dataset families;
//! * [`isax`] — PAA, breakpoints, iSAX words, MINDIST lower bounds;
//! * [`tree`] — the shared iSAX tree index structure;
//! * [`storage`] — dataset files, device throttling profiles, leaf store;
//! * [`query`] — the shared exact-NN query kernel (preparation, BSF
//!   seeding, early-abandoned candidate scans, unified [`QueryStats`]);
//! * [`ads`], [`ucr`], [`paris`], [`messi`] — the engines;
//! * [`sync`] — the concurrency substrate (atomic BSF, Fetch&Inc claims).
//!
//! Use the facade types ([`MemoryIndex`], [`DiskIndex`]) for application
//! code and the engine crates directly for experiments that need full
//! control (the `dsidx-bench` harness does the latter).

pub mod answers;
pub mod engine;
pub mod error;
pub mod options;
pub mod prelude;
pub mod search;
pub mod shard;
mod snapshot;
pub mod spec;

pub use answers::Answers;
pub use engine::{DiskIndex, Engine, MemoryIndex};
pub use error::{Error, InvalidSpec};
pub use options::Options;
pub use search::Search;
pub use shard::ShardedIndex;
pub use spec::{Fidelity, Measure, QuerySpec};

pub use dsidx_ads as ads;
pub use dsidx_isax as isax;
pub use dsidx_messi as messi;
pub use dsidx_obs as obs;
pub use dsidx_paris as paris;
pub use dsidx_query as query;
pub use dsidx_series as series;
pub use dsidx_storage as storage;
pub use dsidx_sync as sync;
pub use dsidx_tree as tree;
pub use dsidx_ucr as ucr;

pub use dsidx_query::{BatchStats, QueryStats};
