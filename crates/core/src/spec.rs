//! The query plane's request half: [`QuerySpec`] and its axes.
//!
//! The engines differ in *how* they answer a query, never in *what* a
//! query is — so the facade describes every query with one value. A
//! [`QuerySpec`] names the four orthogonal axes of a similarity request:
//!
//! * **how many** — `k` ([`QuerySpec::nn`] / [`QuerySpec::knn`]);
//! * **under which measure** — Euclidean or banded DTW ([`Measure`]);
//! * **at which fidelity** — exact or approximate ([`Fidelity`]);
//! * **with how much reporting** — work counters on request
//!   ([`QuerySpec::with_stats`]).
//!
//! Batching is not a spec axis: [`Search::search`](crate::Search::search)
//! always takes a slice of queries, and a single query is a batch of one.
//! Adding a new axis value means adding an enum variant (both enums are
//! `#[non_exhaustive]`), not a new method on every index type.

use crate::error::{Error, InvalidSpec};

/// The similarity measure a query is answered under.
///
/// Marked `#[non_exhaustive]`: future measures (e.g. normalized or
/// weighted variants) appear as new variants, not new facade methods.
#[derive(Debug, Clone, Copy, PartialEq)]
#[non_exhaustive]
pub enum Measure {
    /// Euclidean distance (the paper's default measure).
    Euclidean,
    /// Dynamic Time Warping under a Sakoe-Chiba band of half-width `band`
    /// (in points; `band = 0` degenerates to Euclidean alignment). The
    /// same index answers both measures (§V of the paper).
    Dtw {
        /// Sakoe-Chiba half-width in points; must be smaller than the
        /// series length.
        band: usize,
    },
}

/// How faithful the answer must be.
///
/// Marked `#[non_exhaustive]`: future fidelities (e.g. a probabilistic
/// early-stopping mode) appear as new variants.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[non_exhaustive]
pub enum Fidelity {
    /// The true k nearest neighbors, bit-reproducible across runs and
    /// thread counts.
    Exact,
    /// The engine's fast approximate answer: a best-leaf visit for the
    /// tree engines (ADS+, MESSI), sketch-nearest probing for ParIS.
    /// Reported distances are *real* distances to real series — never
    /// below the exact answer at the same rank — but the positions may
    /// differ, and fewer than `k` matches may come back.
    Approximate,
}

/// One query-plane request: what to ask of an index, independent of which
/// engine answers.
///
/// Build with [`QuerySpec::nn`] or [`QuerySpec::knn`], refine with the
/// builder methods, execute with [`Search::search`](crate::Search::search):
///
/// ```
/// use dsidx::prelude::*;
///
/// let data = DatasetKind::Synthetic.generate(500, 64, 42);
/// let queries = DatasetKind::Synthetic.queries(2, 64, 42);
/// let index = MemoryIndex::build(data, Engine::Messi, &Options::default()).unwrap();
///
/// // The 5 nearest under banded DTW, with work counters.
/// let spec = QuerySpec::knn(5).measure(Measure::Dtw { band: 3 }).with_stats();
/// let batch: Vec<&[f32]> = queries.iter().collect();
/// let answers = index.search(&batch, &spec).unwrap();
/// assert_eq!(answers.len(), 2);
/// assert_eq!(answers.matches()[0].len(), 5);
/// assert!(answers.stats().is_some());
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct QuerySpec {
    k: usize,
    measure: Measure,
    fidelity: Fidelity,
    with_stats: bool,
}

impl QuerySpec {
    /// A 1-NN request — the `k = 1` special case of [`knn`](Self::knn).
    #[must_use]
    pub fn nn() -> Self {
        Self::knn(1)
    }

    /// A k-NN request: the `k` nearest series, sorted ascending by
    /// `(distance, position)`. Defaults to [`Measure::Euclidean`],
    /// [`Fidelity::Exact`], no stats.
    ///
    /// `k == 0` is rejected at [`search`](crate::Search::search) time with
    /// [`InvalidSpec::ZeroK`] — construction never panics.
    #[must_use]
    pub fn knn(k: usize) -> Self {
        Self {
            k,
            measure: Measure::Euclidean,
            fidelity: Fidelity::Exact,
            with_stats: false,
        }
    }

    /// Sets the similarity measure (builder style).
    #[must_use]
    pub fn measure(mut self, measure: Measure) -> Self {
        self.measure = measure;
        self
    }

    /// Sets the answer fidelity (builder style).
    #[must_use]
    pub fn fidelity(mut self, fidelity: Fidelity) -> Self {
        self.fidelity = fidelity;
        self
    }

    /// Requests the per-query/batch work counters in the
    /// [`Answers`](crate::Answers) (builder style). Collection is free —
    /// the engines count anyway — so this only controls exposure.
    #[must_use]
    pub fn with_stats(mut self) -> Self {
        self.with_stats = true;
        self
    }

    /// Neighbors requested per query.
    #[must_use]
    pub fn k(&self) -> usize {
        self.k
    }

    /// The similarity measure.
    #[must_use]
    pub fn measure_kind(&self) -> Measure {
        self.measure
    }

    /// The answer fidelity.
    #[must_use]
    pub fn fidelity_kind(&self) -> Fidelity {
        self.fidelity
    }

    /// Whether stats were requested.
    #[must_use]
    pub fn stats_requested(&self) -> bool {
        self.with_stats
    }

    /// Validates this spec against an index's series length and a query
    /// batch; every rejection is an [`InvalidSpec`] with actionable text.
    pub(crate) fn validate(&self, series_len: usize, queries: &[&[f32]]) -> Result<(), Error> {
        if self.k == 0 {
            return Err(InvalidSpec::ZeroK.into());
        }
        if queries.is_empty() {
            return Err(InvalidSpec::EmptyBatch.into());
        }
        if let Measure::Dtw { band } = self.measure {
            if band >= series_len {
                return Err(InvalidSpec::BandTooWide { band, series_len }.into());
            }
        }
        for (index, q) in queries.iter().enumerate() {
            if q.len() != series_len {
                return Err(InvalidSpec::QueryLength {
                    expected: series_len,
                    got: q.len(),
                    index,
                }
                .into());
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builder_composes_all_axes() {
        let spec = QuerySpec::knn(7)
            .measure(Measure::Dtw { band: 4 })
            .fidelity(Fidelity::Approximate)
            .with_stats();
        assert_eq!(spec.k(), 7);
        assert_eq!(spec.measure_kind(), Measure::Dtw { band: 4 });
        assert_eq!(spec.fidelity_kind(), Fidelity::Approximate);
        assert!(spec.stats_requested());
        // Defaults.
        let spec = QuerySpec::nn();
        assert_eq!(spec.k(), 1);
        assert_eq!(spec.measure_kind(), Measure::Euclidean);
        assert_eq!(spec.fidelity_kind(), Fidelity::Exact);
        assert!(!spec.stats_requested());
    }

    #[test]
    fn validation_rejects_each_misuse() {
        let q = vec![0.0f32; 64];
        let qs: Vec<&[f32]> = vec![&q];
        assert!(matches!(
            QuerySpec::knn(0).validate(64, &qs),
            Err(Error::InvalidSpec(InvalidSpec::ZeroK))
        ));
        assert!(matches!(
            QuerySpec::nn().validate(64, &[]),
            Err(Error::InvalidSpec(InvalidSpec::EmptyBatch))
        ));
        assert!(matches!(
            QuerySpec::nn()
                .measure(Measure::Dtw { band: 64 })
                .validate(64, &qs),
            Err(Error::InvalidSpec(InvalidSpec::BandTooWide {
                band: 64,
                series_len: 64
            }))
        ));
        let short = vec![0.0f32; 32];
        let mixed: Vec<&[f32]> = vec![&q, &short];
        assert!(matches!(
            QuerySpec::nn().validate(64, &mixed),
            Err(Error::InvalidSpec(InvalidSpec::QueryLength {
                expected: 64,
                got: 32,
                index: 1
            }))
        ));
        // And the in-bounds spellings pass.
        assert!(QuerySpec::knn(5).validate(64, &qs).is_ok());
        assert!(QuerySpec::nn()
            .measure(Measure::Dtw { band: 63 })
            .validate(64, &qs)
            .is_ok());
    }
}
