//! Shared save/open plumbing behind [`MemoryIndex::save`],
//! [`DiskIndex::open`] and friends: engine ids, section naming, fingerprint
//! validation, tree/SAX codec invocation, and the snapshot observability
//! hooks.
//!
//! The division of labor: `dsidx-storage::snapshot` owns the *container*
//! (header, checksums, section table), `dsidx-tree::snapshot` owns the
//! *record layouts* (node/entry/SAX arrays), and this module is the glue
//! that knows which sections an engine's index turns into and how to
//! validate a snapshot against the dataset it is being opened over.
//!
//! [`MemoryIndex::save`]: crate::MemoryIndex::save
//! [`DiskIndex::open`]: crate::DiskIndex::open

use crate::engine::Engine;
use crate::error::Error;
use dsidx_storage::snapshot::SnapshotFingerprint;
use dsidx_storage::{Device, SnapshotReader, SnapshotWriter, StorageError};
use dsidx_tree::snapshot::{decode_tree, encode_tree, CodecError, TreeSections};
use dsidx_tree::{Index, SaxArray, TreeConfig};
use std::path::Path;
use std::sync::Arc;
use std::time::Instant;

/// Histogram of wall nanoseconds per snapshot save.
const SNAPSHOT_SAVE_NANOS: &str = "dsidx_snapshot_save_nanos";
/// Histogram of bytes written per snapshot save.
const SNAPSHOT_SAVE_BYTES: &str = "dsidx_snapshot_save_bytes";
/// Histogram of wall nanoseconds per snapshot open (the cold-start cost a
/// snapshot exists to shrink).
const SNAPSHOT_OPEN_NANOS: &str = "dsidx_snapshot_open_nanos";
/// Histogram of bytes read per snapshot open.
const SNAPSHOT_OPEN_BYTES: &str = "dsidx_snapshot_open_bytes";

// Section ids (1..=8 printable ASCII bytes, see the container docs).
// There is deliberately no SAX section: the entry records already carry
// every (position, word) pair, so the SAX array is reconstructed from the
// decoded tree — storing it twice would cost ~`segments` bytes per series
// of open-path bandwidth to verify a duplicate.
const SEC_NODES: &str = "NODES";
const SEC_ROOTS: &str = "ROOTS";
const SEC_CHUNKS: &str = "CHUNKS";
const SEC_ENTRIES: &str = "ENTRIES";
const SEC_LEAFSTORE: &str = "LEAFSTOR";

/// The engine discriminant stored in a snapshot header. Append-only: these
/// values are on disk, so renumbering is a format-version bump.
fn engine_id(engine: Engine) -> u8 {
    match engine {
        Engine::Ads => 0,
        Engine::Paris => 1,
        Engine::ParisPlus => 2,
        Engine::Messi => 3,
    }
}

fn engine_from_id(id: u8) -> Result<Engine, Error> {
    match id {
        0 => Ok(Engine::Ads),
        1 => Ok(Engine::Paris),
        2 => Ok(Engine::ParisPlus),
        3 => Ok(Engine::Messi),
        other => Err(corrupt(format!(
            "snapshot names unknown engine id {other} (file from a newer build?)"
        ))),
    }
}

fn corrupt(msg: String) -> Error {
    Error::Storage(StorageError::Corrupt(msg))
}

fn codec(e: CodecError) -> Error {
    corrupt(e.to_string())
}

/// Writes one engine index as a snapshot file. `leaf_store` is the raw
/// bytes of a materialized ParIS leaf store to embed, when there is one.
/// Returns the file size; charging goes to `device` as one sequential
/// append.
pub(crate) fn save_snapshot(
    path: &Path,
    engine: Engine,
    index: &Index,
    leaf_store: Option<Vec<u8>>,
    device: &Arc<Device>,
) -> Result<u64, Error> {
    let start = Instant::now();
    let config = index.config();
    let fingerprint = SnapshotFingerprint {
        engine: engine_id(engine),
        segments: config.segments() as u8,
        series_len: u32::try_from(config.series_len()).expect("series_len fits u32"),
        count: index.len() as u64,
        leaf_capacity: config.leaf_capacity() as u64,
    };
    let mut writer = SnapshotWriter::new(path, fingerprint, Arc::clone(device));
    let tree = encode_tree(index);
    writer.section(SEC_NODES, tree.nodes);
    writer.section(SEC_ROOTS, tree.roots);
    writer.section(SEC_CHUNKS, tree.chunks);
    writer.section(SEC_ENTRIES, tree.entries);
    if let Some(bytes) = leaf_store {
        writer.section(SEC_LEAFSTORE, bytes);
    }
    let total = writer.finish()?;
    record_snapshot_obs(
        SNAPSHOT_SAVE_NANOS,
        "Wall nanoseconds per index snapshot save",
        SNAPSHOT_SAVE_BYTES,
        "Bytes written per index snapshot save",
        start.elapsed(),
        total,
    );
    Ok(total)
}

/// Everything an opened snapshot reconstitutes, before engine-specific
/// assembly (ParIS leaf-store reader, MESSI flat tree).
pub(crate) struct SnapshotContents {
    pub engine: Engine,
    pub index: Index,
    pub sax: SaxArray,
    /// `(offset, len, bytes)` of the embedded leaf store within the
    /// snapshot file, when one was saved. The bytes are the verified
    /// section payload — handing them to the leaf-store reader lets it
    /// parse its header without a second (seek-priced) read of the file.
    pub leaf_store: Option<(u64, u64, Vec<u8>)>,
    /// Tree geometry from the fingerprint — the opener overrides its
    /// [`Options`](crate::Options) with these so query-time configs match
    /// the snapshot, not the caller's (possibly different) defaults.
    pub segments: usize,
    pub leaf_capacity: usize,
}

/// Opens, validates and decodes a snapshot against the dataset it will
/// answer for. No tree construction happens: the node records *are* the
/// tree, read back in one pass per section and re-linked.
///
/// All reads are charged to `device`; the open is recorded under the
/// `dsidx_snapshot_open_*` metrics and a `snapshot_open` trace event.
pub(crate) fn open_snapshot(
    path: &Path,
    device: &Arc<Device>,
    expect_series_len: usize,
    expect_count: usize,
) -> Result<SnapshotContents, Error> {
    let start = Instant::now();
    let read_before = device.stats().bytes_read;
    let reader = SnapshotReader::open(path, Arc::clone(device))?;
    let fp = *reader.fingerprint();
    let engine = engine_from_id(fp.engine)?;
    if fp.series_len as usize != expect_series_len || fp.count != expect_count as u64 {
        return Err(corrupt(format!(
            "snapshot fingerprint mismatch: saved over {} series of length {}, opened against \
             {expect_count} of length {expect_series_len} — is this the right dataset?",
            fp.count, fp.series_len,
        )));
    }
    let segments = usize::from(fp.segments);
    let leaf_capacity = usize::try_from(fp.leaf_capacity).expect("leaf capacity fits usize");
    // TreeConfig re-validates the geometry (segment bounds, series_len vs
    // segments, nonzero capacity), so corrupt fingerprint fields surface
    // as configuration errors here rather than panics later.
    let config = TreeConfig::new(expect_series_len, segments, leaf_capacity)?;
    let sections = TreeSections {
        nodes: reader.read_section(SEC_NODES)?,
        roots: reader.read_section(SEC_ROOTS)?,
        chunks: reader.read_section(SEC_CHUNKS)?,
        entries: reader.read_section(SEC_ENTRIES)?,
    };
    let index = decode_tree(config, expect_count, &sections).map_err(codec)?;
    // The SAX array is reconstructed from the leaf entries — the decoder
    // proved their positions form a permutation of `0..count`, so every
    // slot is filled exactly once and the two structures agree by
    // construction (no cross-check needed, no duplicate section read).
    let mut words = vec![None; expect_count];
    index.for_each_leaf(&mut |leaf| {
        for entry in leaf.entries().expect("leaf has entries") {
            words[entry.pos as usize] = Some(entry.word);
        }
    });
    let sax = SaxArray::new(
        words
            .into_iter()
            .map(|w| w.expect("decoded positions cover 0..count"))
            .collect(),
    );
    let leaf_store = if reader.has_section(SEC_LEAFSTORE) {
        // Verify the embedded store's checksum now — query-time leaf reads
        // go straight to file offsets and would not notice corruption. The
        // verified bytes ride along so the reader can parse its header
        // without re-reading the file.
        let bytes = reader.read_section(SEC_LEAFSTORE)?;
        let (offset, len) = reader
            .section_range(SEC_LEAFSTORE)
            .expect("section exists: has_section was just checked");
        Some((offset, len, bytes))
    } else {
        None
    };
    let elapsed = start.elapsed();
    let bytes = device.stats().bytes_read - read_before;
    record_snapshot_obs(
        SNAPSHOT_OPEN_NANOS,
        "Wall nanoseconds per index snapshot open",
        SNAPSHOT_OPEN_BYTES,
        "Bytes read per index snapshot open",
        elapsed,
        bytes,
    );
    if dsidx_obs::trace::enabled() {
        use dsidx_obs::trace::Value;
        dsidx_obs::trace::emit(
            "snapshot_open",
            &[
                ("engine", Value::Str(engine.name())),
                ("bytes", Value::U64(bytes)),
                (
                    "nanos",
                    Value::U64(u64::try_from(elapsed.as_nanos()).unwrap_or(u64::MAX)),
                ),
            ],
        );
    }
    Ok(SnapshotContents {
        engine,
        index,
        sax,
        leaf_store,
        segments,
        leaf_capacity,
    })
}

fn record_snapshot_obs(
    nanos_metric: &'static str,
    nanos_help: &'static str,
    bytes_metric: &'static str,
    bytes_help: &'static str,
    elapsed: std::time::Duration,
    bytes: u64,
) {
    if !dsidx_obs::enabled() {
        return;
    }
    // 1us .. ~4s saves/opens; 1KiB .. ~4GiB files.
    let nanos_bounds = dsidx_obs::registry::exponential_bounds(1_000, 4, 12);
    let bytes_bounds = dsidx_obs::registry::exponential_bounds(1_024, 4, 12);
    dsidx_obs::registry::histogram(nanos_metric, nanos_help, &nanos_bounds)
        .observe(u64::try_from(elapsed.as_nanos()).unwrap_or(u64::MAX));
    dsidx_obs::registry::histogram(bytes_metric, bytes_help, &bytes_bounds).observe(bytes);
}
