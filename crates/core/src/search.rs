//! The query plane's execution half: the [`Search`] trait.

use crate::answers::Answers;
use crate::error::Error;
use crate::spec::QuerySpec;

/// One entry point for every similarity query, whatever the engine and
/// wherever the data lives: a batch of queries in, an [`Answers`] out,
/// shaped by a [`QuerySpec`].
///
/// Implemented by [`MemoryIndex`](crate::MemoryIndex) and
/// [`DiskIndex`](crate::DiskIndex); both route all four request axes
/// (`k`, measure, fidelity, stats) through one internal dispatch per
/// engine, so a single query is literally a batch of one and every legacy
/// facade method is a thin wrapper over this call.
///
/// ```
/// use dsidx::prelude::*;
///
/// let data = DatasetKind::Synthetic.generate(400, 64, 11);
/// let queries = DatasetKind::Synthetic.queries(4, 64, 11);
/// let index = MemoryIndex::build(data, Engine::Paris, &Options::default()).unwrap();
///
/// // One call covers the whole matrix: exact 3-NN for four queries...
/// let batch: Vec<&[f32]> = queries.iter().collect();
/// let exact = index.search(&batch, &QuerySpec::knn(3)).unwrap();
/// assert_eq!(exact.len(), 4);
///
/// // ...and the approximate spelling differs by one builder call.
/// let spec = QuerySpec::knn(3).fidelity(Fidelity::Approximate);
/// let approx = index.search(&batch, &spec).unwrap();
/// // Approximate distances never beat exact ones at the same rank.
/// for (a, e) in approx.matches()[0].iter().zip(&exact.matches()[0]) {
///     assert!(a.dist_sq >= e.dist_sq);
/// }
/// ```
pub trait Search {
    /// Answers every query in `queries` under `spec`, inside one engine
    /// schedule where the engine supports it (a single pool broadcast set
    /// for the parallel engines).
    ///
    /// The returned [`Answers`] are index-aligned with `queries`; each
    /// match list is sorted ascending by `(distance, position)` and —
    /// at [`Fidelity::Exact`](crate::Fidelity::Exact) — deterministic
    /// across runs and thread counts.
    ///
    /// # Errors
    /// [`Error::InvalidSpec`] for query-time misuse (`k == 0`, empty
    /// batch, over-wide DTW band, wrong query length);
    /// [`Error::Unsupported`] when the engine cannot run the spec (exact
    /// DTW on an on-disk index); I/O and configuration failures from the
    /// engines.
    fn search(&self, queries: &[&[f32]], spec: &QuerySpec) -> Result<Answers, Error>;
}
