//! The unified engine API: build once, query many.

use crate::error::Error;
use crate::options::Options;
use dsidx_query::QueryStats;
use dsidx_series::{Dataset, Match};
use dsidx_storage::{DatasetFile, Device, DeviceProfile};
use dsidx_tree::stats::{index_stats, IndexStats};
use std::path::{Path, PathBuf};
use std::sync::Arc;

/// Which indexing engine to use.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Engine {
    /// ADS+-style serial baseline.
    Ads,
    /// ParIS (parallel, stop-the-world stage 3).
    Paris,
    /// ParIS+ (parallel, fully overlapped construction). On-disk only;
    /// in-memory builds fall back to ParIS, which the paper itself uses
    /// for in-memory comparisons.
    ParisPlus,
    /// MESSI (parallel, in-memory). In-memory only.
    Messi,
}

impl Engine {
    /// All engines.
    pub const ALL: [Engine; 4] = [Engine::Ads, Engine::Paris, Engine::ParisPlus, Engine::Messi];

    /// Display name matching the paper.
    #[must_use]
    pub fn name(self) -> &'static str {
        match self {
            Engine::Ads => "ADS+",
            Engine::Paris => "ParIS",
            Engine::ParisPlus => "ParIS+",
            Engine::Messi => "MESSI",
        }
    }
}

impl std::str::FromStr for Engine {
    type Err = String;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        match s.to_ascii_lowercase().as_str() {
            "ads" | "ads+" => Ok(Engine::Ads),
            "paris" => Ok(Engine::Paris),
            "paris+" | "parisplus" => Ok(Engine::ParisPlus),
            "messi" => Ok(Engine::Messi),
            other => Err(format!("unknown engine: {other}")),
        }
    }
}

enum MemoryInner {
    Ads(dsidx_ads::AdsIndex),
    Paris(dsidx_paris::ParisIndex),
    Messi(dsidx_messi::MessiIndex),
}

/// An index over an in-memory dataset (owned via `Arc`, so clones of the
/// handle share both data and index).
pub struct MemoryIndex {
    data: Arc<Dataset>,
    engine: Engine,
    options: Options,
    inner: MemoryInner,
}

impl MemoryIndex {
    /// Builds an index over `data` with the chosen engine.
    ///
    /// `Engine::ParisPlus` builds with the ParIS in-memory path (see
    /// [`Engine::ParisPlus`] docs).
    ///
    /// # Errors
    /// Configuration errors (series length vs segments etc.).
    pub fn build(
        data: impl Into<Arc<Dataset>>,
        engine: Engine,
        options: &Options,
    ) -> Result<Self, Error> {
        let data = data.into();
        let series_len = data.series_len();
        let inner = match engine {
            Engine::Ads => {
                let (ads, _) =
                    dsidx_ads::build_from_dataset(&data, &options.tree_config(series_len)?);
                MemoryInner::Ads(ads)
            }
            Engine::Paris | Engine::ParisPlus => {
                let (paris, _) =
                    dsidx_paris::build_in_memory(&data, &options.paris_config(series_len)?);
                MemoryInner::Paris(paris)
            }
            Engine::Messi => {
                let (messi, _) = dsidx_messi::build(&data, &options.messi_config(series_len)?);
                MemoryInner::Messi(messi)
            }
        };
        Ok(Self {
            data,
            engine,
            options: options.clone(),
            inner,
        })
    }

    /// The engine this index was built with.
    #[must_use]
    pub fn engine(&self) -> Engine {
        self.engine
    }

    /// The indexed dataset.
    #[must_use]
    pub fn data(&self) -> &Dataset {
        &self.data
    }

    /// Exact 1-NN under Euclidean distance. `None` for an empty dataset.
    ///
    /// # Errors
    /// Propagates engine failures (none occur for in-memory sources, but
    /// the signature is uniform with [`DiskIndex::nn`]).
    pub fn nn(&self, query: &[f32]) -> Result<Option<Match>, Error> {
        Ok(self.nn_with_stats(query)?.map(|(m, _)| m))
    }

    /// Exact 1-NN plus the unified per-query work counters — the same
    /// [`QueryStats`] type whichever engine answers, so callers compare
    /// engines without per-engine stat plumbing.
    ///
    /// # Errors
    /// Propagates engine failures.
    pub fn nn_with_stats(&self, query: &[f32]) -> Result<Option<(Match, QueryStats)>, Error> {
        let threads = self.options.effective_threads();
        match &self.inner {
            MemoryInner::Ads(ads) => Ok(dsidx_ads::exact_nn(ads, &*self.data, query)?),
            MemoryInner::Paris(paris) => {
                Ok(dsidx_paris::exact_nn(paris, &*self.data, query, threads)?)
            }
            MemoryInner::Messi(messi) => {
                let cfg = self.options.messi_config(self.data.series_len())?;
                Ok(dsidx_messi::exact_nn(messi, &self.data, query, &cfg))
            }
        }
    }

    /// Exact 1-NN under banded DTW — answered from the *same* index (§V of
    /// the paper). Supported by the MESSI engine; other engines fall back
    /// to the parallel UCR-DTW scan (still exact, just index-free).
    ///
    /// # Errors
    /// Configuration errors.
    pub fn nn_dtw(&self, query: &[f32], band: usize) -> Result<Option<Match>, Error> {
        match &self.inner {
            MemoryInner::Messi(messi) => {
                let cfg = self.options.messi_config(self.data.series_len())?;
                Ok(dsidx_messi::exact_nn_dtw(
                    messi, &self.data, query, band, &cfg,
                ))
            }
            _ => Ok(dsidx_ucr::scan_dtw_parallel(
                &self.data,
                query,
                band,
                self.options.effective_threads(),
            )),
        }
    }

    /// Structural statistics of the underlying tree.
    #[must_use]
    pub fn stats(&self) -> IndexStats {
        match &self.inner {
            MemoryInner::Ads(ads) => index_stats(&ads.index),
            MemoryInner::Paris(paris) => index_stats(&paris.index),
            MemoryInner::Messi(messi) => index_stats(&messi.index),
        }
    }
}

enum DiskInner {
    Ads(dsidx_ads::AdsIndex),
    Paris(dsidx_paris::ParisIndex),
}

/// An index over an on-disk dataset file; raw values are fetched (and
/// charged to the device) at query time.
pub struct DiskIndex {
    file: DatasetFile,
    engine: Engine,
    options: Options,
    inner: DiskInner,
    build_report: Option<dsidx_paris::BuildReport>,
    #[allow(dead_code)] // held so the leaf store file outlives the index
    store_path: Option<PathBuf>,
}

impl DiskIndex {
    /// Builds an index over the dataset file at `dataset_path`, modeling
    /// the given device profile. `workdir` receives the leaf store.
    ///
    /// `Engine::Messi` is in-memory only and is rejected here.
    ///
    /// # Errors
    /// I/O and configuration failures.
    pub fn build(
        dataset_path: &Path,
        workdir: &Path,
        engine: Engine,
        options: &Options,
        profile: DeviceProfile,
    ) -> Result<Self, Error> {
        let device = Arc::new(Device::new(profile));
        let file = DatasetFile::open(dataset_path, device)?;
        let series_len = file.series_len();
        let (inner, build_report, store_path) = match engine {
            Engine::Ads => {
                let (ads, _) = dsidx_ads::build_from_file(
                    &file,
                    &options.tree_config(series_len)?,
                    options.block_series,
                )?;
                (DiskInner::Ads(ads), None, None)
            }
            Engine::Paris | Engine::ParisPlus => {
                let mode = if engine == Engine::Paris {
                    dsidx_paris::Overlap::Paris
                } else {
                    dsidx_paris::Overlap::ParisPlus
                };
                std::fs::create_dir_all(workdir).map_err(dsidx_storage::StorageError::from)?;
                let store_path = workdir.join(format!("dsidx-leaves-{}.store", std::process::id()));
                let (paris, report) = dsidx_paris::build_on_disk(
                    &file,
                    &store_path,
                    &options.paris_config(series_len)?,
                    mode,
                )?;
                (DiskInner::Paris(paris), Some(report), Some(store_path))
            }
            Engine::Messi => {
                return Err(Error::Unsupported("MESSI is an in-memory index"));
            }
        };
        Ok(Self {
            file,
            engine,
            options: options.clone(),
            inner,
            build_report,
            store_path,
        })
    }

    /// The engine this index was built with.
    #[must_use]
    pub fn engine(&self) -> Engine {
        self.engine
    }

    /// The dataset file the index answers from.
    #[must_use]
    pub fn file(&self) -> &DatasetFile {
        &self.file
    }

    /// Build time decomposition (ParIS/ParIS+ only).
    #[must_use]
    pub fn build_report(&self) -> Option<&dsidx_paris::BuildReport> {
        self.build_report.as_ref()
    }

    /// Exact 1-NN under Euclidean distance; raw reads go to the modeled
    /// device. `None` for an empty dataset.
    ///
    /// # Errors
    /// Propagates I/O failures.
    pub fn nn(&self, query: &[f32]) -> Result<Option<Match>, Error> {
        Ok(self.nn_with_stats(query)?.map(|(m, _)| m))
    }

    /// Exact 1-NN plus the unified per-query work counters (see
    /// [`MemoryIndex::nn_with_stats`]).
    ///
    /// # Errors
    /// Propagates I/O failures.
    pub fn nn_with_stats(&self, query: &[f32]) -> Result<Option<(Match, QueryStats)>, Error> {
        match &self.inner {
            DiskInner::Ads(ads) => Ok(dsidx_ads::exact_nn(ads, &self.file, query)?),
            DiskInner::Paris(paris) => Ok(dsidx_paris::exact_nn(
                paris,
                &self.file,
                query,
                self.options.effective_threads(),
            )?),
        }
    }

    /// Structural statistics of the underlying tree.
    #[must_use]
    pub fn stats(&self) -> IndexStats {
        match &self.inner {
            DiskInner::Ads(ads) => index_stats(&ads.index),
            DiskInner::Paris(paris) => index_stats(&paris.index),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dsidx_series::gen::DatasetKind;

    #[test]
    fn engine_parsing_and_names() {
        assert_eq!("messi".parse::<Engine>().unwrap(), Engine::Messi);
        assert_eq!("ParIS+".parse::<Engine>().unwrap(), Engine::ParisPlus);
        assert_eq!("ads+".parse::<Engine>().unwrap(), Engine::Ads);
        assert!("foo".parse::<Engine>().is_err());
        assert_eq!(Engine::Messi.name(), "MESSI");
    }

    #[test]
    fn all_memory_engines_agree() {
        let data = DatasetKind::Synthetic.generate(400, 64, 77);
        let opts = Options::default().with_threads(4).with_leaf_capacity(16);
        let queries = DatasetKind::Synthetic.queries(5, 64, 77);
        let indexes: Vec<MemoryIndex> = Engine::ALL
            .iter()
            .map(|&e| MemoryIndex::build(data.clone(), e, &opts).unwrap())
            .collect();
        for q in queries.iter() {
            let want = dsidx_ucr::brute_force(&data, q).unwrap();
            for idx in &indexes {
                let got = idx.nn(q).unwrap().unwrap();
                assert_eq!(got.pos, want.pos, "{}", idx.engine().name());
            }
        }
    }

    #[test]
    fn messi_is_rejected_on_disk() {
        let dir = std::env::temp_dir().join(format!("dsidx-core-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("m.dsidx");
        let data = DatasetKind::Synthetic.generate(10, 64, 1);
        dsidx_storage::write_dataset(&path, &data, Arc::new(Device::unthrottled())).unwrap();
        let e = DiskIndex::build(
            &path,
            &dir,
            Engine::Messi,
            &Options::default(),
            DeviceProfile::UNTHROTTLED,
        );
        assert!(matches!(e, Err(Error::Unsupported(_))));
    }

    #[test]
    fn unified_query_stats_across_engines() {
        let data = DatasetKind::Synthetic.generate(300, 64, 21);
        let opts = Options::default().with_threads(2).with_leaf_capacity(16);
        let q = DatasetKind::Synthetic.queries(1, 64, 21);
        for engine in Engine::ALL {
            let idx = MemoryIndex::build(data.clone(), engine, &opts).unwrap();
            let (_, stats): (Match, QueryStats) =
                idx.nn_with_stats(q.get(0)).unwrap().expect("non-empty");
            // Every engine pays real distances (at least the seeding pass)
            // and reports lower-bound work through the same accessor.
            assert!(stats.real_computed > 0, "{}", engine.name());
            assert!(stats.lb_total() > 0, "{}", engine.name());
        }
    }

    #[test]
    fn stats_are_available() {
        let data = DatasetKind::Sald.generate(200, 64, 5);
        let opts = Options::default().with_threads(2).with_leaf_capacity(10);
        let idx = MemoryIndex::build(data, Engine::Messi, &opts).unwrap();
        let st = idx.stats();
        assert_eq!(st.entry_count, 200);
        assert!(st.leaf_count > 0);
    }
}
