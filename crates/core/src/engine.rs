//! The unified engine API: build once, query many.

use crate::error::Error;
use crate::options::Options;
use dsidx_query::{BatchStats, QueryStats};
use dsidx_series::{Dataset, Match};
use dsidx_storage::{DatasetFile, Device, DeviceProfile};
use dsidx_tree::stats::{index_stats, IndexStats};
use std::path::{Path, PathBuf};
use std::sync::Arc;

/// Which indexing engine to use.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Engine {
    /// ADS+-style serial baseline.
    Ads,
    /// ParIS (parallel, stop-the-world stage 3).
    Paris,
    /// ParIS+ (parallel, fully overlapped construction). On-disk only;
    /// in-memory builds fall back to ParIS, which the paper itself uses
    /// for in-memory comparisons.
    ParisPlus,
    /// MESSI (parallel, in-memory). In-memory only.
    Messi,
}

impl Engine {
    /// All engines.
    pub const ALL: [Engine; 4] = [Engine::Ads, Engine::Paris, Engine::ParisPlus, Engine::Messi];

    /// Display name matching the paper.
    #[must_use]
    pub fn name(self) -> &'static str {
        match self {
            Engine::Ads => "ADS+",
            Engine::Paris => "ParIS",
            Engine::ParisPlus => "ParIS+",
            Engine::Messi => "MESSI",
        }
    }
}

impl std::str::FromStr for Engine {
    type Err = String;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        match s.to_ascii_lowercase().as_str() {
            "ads" | "ads+" => Ok(Engine::Ads),
            "paris" => Ok(Engine::Paris),
            "paris+" | "parisplus" => Ok(Engine::ParisPlus),
            "messi" => Ok(Engine::Messi),
            other => Err(format!("unknown engine: {other}")),
        }
    }
}

enum MemoryInner {
    Ads(dsidx_ads::AdsIndex),
    Paris(dsidx_paris::ParisIndex),
    Messi(dsidx_messi::MessiIndex),
}

/// An index over an in-memory dataset (owned via `Arc`, so clones of the
/// handle share both data and index).
pub struct MemoryIndex {
    data: Arc<Dataset>,
    engine: Engine,
    options: Options,
    inner: MemoryInner,
}

impl MemoryIndex {
    /// Builds an index over `data` with the chosen engine.
    ///
    /// `Engine::ParisPlus` builds with the ParIS in-memory path (see
    /// [`Engine::ParisPlus`] docs).
    ///
    /// # Errors
    /// Configuration errors (series length vs segments etc.).
    pub fn build(
        data: impl Into<Arc<Dataset>>,
        engine: Engine,
        options: &Options,
    ) -> Result<Self, Error> {
        let data = data.into();
        let series_len = data.series_len();
        let inner = match engine {
            Engine::Ads => {
                let (ads, _) =
                    dsidx_ads::build_from_dataset(&data, &options.tree_config(series_len)?);
                MemoryInner::Ads(ads)
            }
            Engine::Paris | Engine::ParisPlus => {
                let (paris, _) =
                    dsidx_paris::build_in_memory(&data, &options.paris_config(series_len)?);
                MemoryInner::Paris(paris)
            }
            Engine::Messi => {
                let (messi, _) = dsidx_messi::build(&data, &options.messi_config(series_len)?);
                MemoryInner::Messi(messi)
            }
        };
        Ok(Self {
            data,
            engine,
            options: options.clone(),
            inner,
        })
    }

    /// The engine this index was built with.
    #[must_use]
    pub fn engine(&self) -> Engine {
        self.engine
    }

    /// The indexed dataset.
    #[must_use]
    pub fn data(&self) -> &Dataset {
        &self.data
    }

    /// Exact 1-NN under Euclidean distance — the k = 1 special case of
    /// [`knn`](Self::knn). `None` for an empty dataset.
    ///
    /// # Errors
    /// Propagates engine failures (none occur for in-memory sources, but
    /// the signature is uniform with [`DiskIndex::nn`]).
    pub fn nn(&self, query: &[f32]) -> Result<Option<Match>, Error> {
        Ok(self.nn_with_stats(query)?.map(|(m, _)| m))
    }

    /// Exact 1-NN plus the unified per-query work counters — the same
    /// [`QueryStats`] type whichever engine answers, so callers compare
    /// engines without per-engine stat plumbing.
    ///
    /// # Errors
    /// Propagates engine failures.
    pub fn nn_with_stats(&self, query: &[f32]) -> Result<Option<(Match, QueryStats)>, Error> {
        let (matches, stats) = self.knn_with_stats(query, 1)?;
        Ok(matches.into_iter().next().map(|m| (m, stats)))
    }

    /// Exact k-NN under Euclidean distance: the `k` nearest series, sorted
    /// ascending by `(distance, position)` — fewer than `k` when the
    /// collection is smaller, empty for an empty dataset. Deterministic
    /// across runs and thread counts (distance ties prefer the lowest
    /// position).
    ///
    /// # Errors
    /// Propagates engine failures.
    ///
    /// # Panics
    /// Panics if `k == 0`.
    pub fn knn(&self, query: &[f32], k: usize) -> Result<Vec<Match>, Error> {
        Ok(self.knn_with_stats(query, k)?.0)
    }

    /// Exact k-NN plus the unified per-query work counters (see
    /// [`nn_with_stats`](Self::nn_with_stats)) — the batch-of-one special
    /// case of [`knn_batch_with_stats`](Self::knn_batch_with_stats).
    ///
    /// # Errors
    /// Propagates engine failures.
    ///
    /// # Panics
    /// Panics if `k == 0`.
    pub fn knn_with_stats(
        &self,
        query: &[f32],
        k: usize,
    ) -> Result<(Vec<Match>, QueryStats), Error> {
        let (mut matches, stats) = self.knn_batch_with_stats(&[query], k)?;
        Ok((matches.pop().expect("batch of one"), stats.into_single()))
    }

    /// Exact 1-NN for a *batch* of queries — the k = 1 special case of
    /// [`knn_batch`](Self::knn_batch): one answer per query (in order),
    /// `None` where the dataset is empty.
    ///
    /// # Errors
    /// Propagates engine failures.
    pub fn nn_batch(&self, queries: &[&[f32]]) -> Result<Vec<Option<Match>>, Error> {
        let (matches, _) = self.knn_batch_with_stats(queries, 1)?;
        Ok(matches.into_iter().map(|mut m| m.pop()).collect())
    }

    /// Exact k-NN for a *batch* of queries, answered by one shared engine
    /// schedule (a single pool broadcast set) instead of one per query.
    /// Element-wise identical to calling [`knn`](Self::knn) per query —
    /// same contract, same determinism — while the index structures and
    /// raw data are walked once for the whole batch.
    ///
    /// # Errors
    /// Propagates engine failures.
    ///
    /// # Panics
    /// Panics if `k == 0`.
    pub fn knn_batch(&self, queries: &[&[f32]], k: usize) -> Result<Vec<Vec<Match>>, Error> {
        Ok(self.knn_batch_with_stats(queries, k)?.0)
    }

    /// Exact k-NN for a batch of queries plus the [`BatchStats`] that make
    /// the amortization observable: pool broadcasts issued for the whole
    /// batch (so broadcasts-per-query shrinks as `1/B`), raw series
    /// fetched once versus the per-query requests they served, and the
    /// per-query [`QueryStats`].
    ///
    /// # Errors
    /// Propagates engine failures.
    ///
    /// # Panics
    /// Panics if `k == 0`.
    pub fn knn_batch_with_stats(
        &self,
        queries: &[&[f32]],
        k: usize,
    ) -> Result<(Vec<Vec<Match>>, BatchStats), Error> {
        let threads = self.options.effective_threads();
        match &self.inner {
            MemoryInner::Ads(ads) => Ok(dsidx_ads::exact_knn_batch(ads, &*self.data, queries, k)?),
            MemoryInner::Paris(paris) => Ok(dsidx_paris::exact_knn_batch(
                paris,
                &*self.data,
                queries,
                k,
                threads,
            )?),
            MemoryInner::Messi(messi) => {
                let cfg = self.options.messi_config(self.data.series_len())?;
                Ok(dsidx_messi::exact_knn_batch(
                    messi, &self.data, queries, k, &cfg,
                ))
            }
        }
    }

    /// Exact 1-NN under banded DTW — answered from the *same* index (§V of
    /// the paper). Supported by the MESSI engine; other engines fall back
    /// to the parallel UCR-DTW scan (still exact, just index-free).
    ///
    /// # Errors
    /// Configuration errors.
    pub fn nn_dtw(&self, query: &[f32], band: usize) -> Result<Option<Match>, Error> {
        Ok(self.nn_dtw_with_stats(query, band)?.map(|(m, _)| m))
    }

    /// Exact 1-NN under banded DTW plus the unified work counters for the
    /// pruning cascade (LB_Keogh prunes, early-abandoned DTWs) — the same
    /// [`QueryStats`] the ED queries report. The k = 1 special case of
    /// [`knn_dtw_with_stats`](Self::knn_dtw_with_stats).
    ///
    /// # Errors
    /// Configuration errors.
    pub fn nn_dtw_with_stats(
        &self,
        query: &[f32],
        band: usize,
    ) -> Result<Option<(Match, QueryStats)>, Error> {
        let (matches, stats) = self.knn_dtw_with_stats(query, band, 1)?;
        Ok(matches.into_iter().next().map(|m| (m, stats)))
    }

    /// Exact k-NN under banded DTW — answered from the same index where
    /// the engine supports it (MESSI), by the parallel UCR-DTW k-NN scan
    /// otherwise (still exact, just index-free). Same contract as
    /// [`knn`](Self::knn): sorted ascending by `(distance, position)`,
    /// deterministic, fewer than `k` only when the collection is smaller.
    ///
    /// # Errors
    /// Configuration errors.
    ///
    /// # Panics
    /// Panics if `k == 0`.
    pub fn knn_dtw(&self, query: &[f32], band: usize, k: usize) -> Result<Vec<Match>, Error> {
        Ok(self.knn_dtw_with_stats(query, band, k)?.0)
    }

    /// Exact k-NN under banded DTW plus the unified work counters for the
    /// whole pruning cascade, pruned against the k-th best DTW distance.
    ///
    /// # Errors
    /// Configuration errors.
    ///
    /// # Panics
    /// Panics if `k == 0`.
    pub fn knn_dtw_with_stats(
        &self,
        query: &[f32],
        band: usize,
        k: usize,
    ) -> Result<(Vec<Match>, QueryStats), Error> {
        match &self.inner {
            MemoryInner::Messi(messi) => {
                let cfg = self.options.messi_config(self.data.series_len())?;
                Ok(dsidx_messi::exact_knn_dtw(
                    messi, &self.data, query, band, k, &cfg,
                ))
            }
            _ => Ok(dsidx_ucr::knn_dtw_parallel_with_stats(
                &self.data,
                query,
                band,
                k,
                self.options.effective_threads(),
            )),
        }
    }

    /// Structural statistics of the underlying tree.
    #[must_use]
    pub fn stats(&self) -> IndexStats {
        match &self.inner {
            MemoryInner::Ads(ads) => index_stats(&ads.index),
            MemoryInner::Paris(paris) => index_stats(&paris.index),
            MemoryInner::Messi(messi) => index_stats(&messi.index),
        }
    }
}

enum DiskInner {
    Ads(dsidx_ads::AdsIndex),
    Paris(dsidx_paris::ParisIndex),
}

/// An index over an on-disk dataset file; raw values are fetched (and
/// charged to the device) at query time.
pub struct DiskIndex {
    file: DatasetFile,
    engine: Engine,
    options: Options,
    inner: DiskInner,
    build_report: Option<dsidx_paris::BuildReport>,
    #[allow(dead_code)] // held so the leaf store file outlives the index
    store_path: Option<PathBuf>,
}

impl DiskIndex {
    /// Builds an index over the dataset file at `dataset_path`, modeling
    /// the given device profile. `workdir` receives the leaf store.
    ///
    /// `Engine::Messi` is in-memory only and is rejected here.
    ///
    /// # Errors
    /// I/O and configuration failures.
    pub fn build(
        dataset_path: &Path,
        workdir: &Path,
        engine: Engine,
        options: &Options,
        profile: DeviceProfile,
    ) -> Result<Self, Error> {
        let device = Arc::new(Device::new(profile));
        let file = DatasetFile::open(dataset_path, device)?;
        let series_len = file.series_len();
        let (inner, build_report, store_path) = match engine {
            Engine::Ads => {
                let (ads, _) = dsidx_ads::build_from_file(
                    &file,
                    &options.tree_config(series_len)?,
                    options.block_series,
                )?;
                (DiskInner::Ads(ads), None, None)
            }
            Engine::Paris | Engine::ParisPlus => {
                let mode = if engine == Engine::Paris {
                    dsidx_paris::Overlap::Paris
                } else {
                    dsidx_paris::Overlap::ParisPlus
                };
                std::fs::create_dir_all(workdir).map_err(dsidx_storage::StorageError::from)?;
                let store_path = workdir.join(format!("dsidx-leaves-{}.store", std::process::id()));
                let (paris, report) = dsidx_paris::build_on_disk(
                    &file,
                    &store_path,
                    &options.paris_config(series_len)?,
                    mode,
                )?;
                (DiskInner::Paris(paris), Some(report), Some(store_path))
            }
            Engine::Messi => {
                return Err(Error::Unsupported("MESSI is an in-memory index"));
            }
        };
        Ok(Self {
            file,
            engine,
            options: options.clone(),
            inner,
            build_report,
            store_path,
        })
    }

    /// The engine this index was built with.
    #[must_use]
    pub fn engine(&self) -> Engine {
        self.engine
    }

    /// The dataset file the index answers from.
    #[must_use]
    pub fn file(&self) -> &DatasetFile {
        &self.file
    }

    /// Build time decomposition (ParIS/ParIS+ only).
    #[must_use]
    pub fn build_report(&self) -> Option<&dsidx_paris::BuildReport> {
        self.build_report.as_ref()
    }

    /// Exact 1-NN under Euclidean distance — the k = 1 special case of
    /// [`knn`](Self::knn); raw reads go to the modeled device. `None` for
    /// an empty dataset.
    ///
    /// # Errors
    /// Propagates I/O failures.
    pub fn nn(&self, query: &[f32]) -> Result<Option<Match>, Error> {
        Ok(self.nn_with_stats(query)?.map(|(m, _)| m))
    }

    /// Exact 1-NN plus the unified per-query work counters (see
    /// [`MemoryIndex::nn_with_stats`]).
    ///
    /// # Errors
    /// Propagates I/O failures.
    pub fn nn_with_stats(&self, query: &[f32]) -> Result<Option<(Match, QueryStats)>, Error> {
        let (matches, stats) = self.knn_with_stats(query, 1)?;
        Ok(matches.into_iter().next().map(|m| (m, stats)))
    }

    /// Exact k-NN under Euclidean distance; raw reads for candidate
    /// verification go to the modeled device. Same contract as
    /// [`MemoryIndex::knn`].
    ///
    /// # Errors
    /// Propagates I/O failures.
    ///
    /// # Panics
    /// Panics if `k == 0`.
    pub fn knn(&self, query: &[f32], k: usize) -> Result<Vec<Match>, Error> {
        Ok(self.knn_with_stats(query, k)?.0)
    }

    /// Exact k-NN plus the unified per-query work counters (see
    /// [`MemoryIndex::knn_with_stats`]) — the batch-of-one special case of
    /// [`knn_batch_with_stats`](Self::knn_batch_with_stats).
    ///
    /// # Errors
    /// Propagates I/O failures.
    ///
    /// # Panics
    /// Panics if `k == 0`.
    pub fn knn_with_stats(
        &self,
        query: &[f32],
        k: usize,
    ) -> Result<(Vec<Match>, QueryStats), Error> {
        let (mut matches, stats) = self.knn_batch_with_stats(&[query], k)?;
        Ok((matches.pop().expect("batch of one"), stats.into_single()))
    }

    /// Exact 1-NN for a *batch* of queries (see
    /// [`MemoryIndex::nn_batch`]); raw reads go to the modeled device.
    ///
    /// # Errors
    /// Propagates I/O failures.
    pub fn nn_batch(&self, queries: &[&[f32]]) -> Result<Vec<Option<Match>>, Error> {
        let (matches, _) = self.knn_batch_with_stats(queries, 1)?;
        Ok(matches.into_iter().map(|mut m| m.pop()).collect())
    }

    /// Exact k-NN for a *batch* of queries answered by one shared engine
    /// schedule (see [`MemoryIndex::knn_batch`]); candidate verification
    /// fetches each raw series at most once per step for the whole batch,
    /// charged to the modeled device.
    ///
    /// # Errors
    /// Propagates I/O failures.
    ///
    /// # Panics
    /// Panics if `k == 0`.
    pub fn knn_batch(&self, queries: &[&[f32]], k: usize) -> Result<Vec<Vec<Match>>, Error> {
        Ok(self.knn_batch_with_stats(queries, k)?.0)
    }

    /// Exact k-NN for a batch of queries plus the [`BatchStats`] (see
    /// [`MemoryIndex::knn_batch_with_stats`]).
    ///
    /// # Errors
    /// Propagates I/O failures.
    ///
    /// # Panics
    /// Panics if `k == 0`.
    pub fn knn_batch_with_stats(
        &self,
        queries: &[&[f32]],
        k: usize,
    ) -> Result<(Vec<Vec<Match>>, BatchStats), Error> {
        match &self.inner {
            DiskInner::Ads(ads) => Ok(dsidx_ads::exact_knn_batch(ads, &self.file, queries, k)?),
            DiskInner::Paris(paris) => Ok(dsidx_paris::exact_knn_batch(
                paris,
                &self.file,
                queries,
                k,
                self.options.effective_threads(),
            )?),
        }
    }

    /// Structural statistics of the underlying tree.
    #[must_use]
    pub fn stats(&self) -> IndexStats {
        match &self.inner {
            DiskInner::Ads(ads) => index_stats(&ads.index),
            DiskInner::Paris(paris) => index_stats(&paris.index),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dsidx_series::gen::DatasetKind;

    #[test]
    fn engine_parsing_and_names() {
        assert_eq!("messi".parse::<Engine>().unwrap(), Engine::Messi);
        assert_eq!("ParIS+".parse::<Engine>().unwrap(), Engine::ParisPlus);
        assert_eq!("ads+".parse::<Engine>().unwrap(), Engine::Ads);
        assert!("foo".parse::<Engine>().is_err());
        assert_eq!(Engine::Messi.name(), "MESSI");
    }

    #[test]
    fn all_memory_engines_agree() {
        let data = DatasetKind::Synthetic.generate(400, 64, 77);
        let opts = Options::default().with_threads(4).with_leaf_capacity(16);
        let queries = DatasetKind::Synthetic.queries(5, 64, 77);
        let indexes: Vec<MemoryIndex> = Engine::ALL
            .iter()
            .map(|&e| MemoryIndex::build(data.clone(), e, &opts).unwrap())
            .collect();
        for q in queries.iter() {
            let want = dsidx_ucr::brute_force(&data, q).unwrap();
            for idx in &indexes {
                let got = idx.nn(q).unwrap().unwrap();
                assert_eq!(got.pos, want.pos, "{}", idx.engine().name());
            }
        }
    }

    #[test]
    fn knn_agrees_with_brute_force_on_all_memory_engines() {
        let data = DatasetKind::Synthetic.generate(350, 64, 91);
        let opts = Options::default().with_threads(4).with_leaf_capacity(16);
        let queries = DatasetKind::Synthetic.queries(3, 64, 91);
        for engine in Engine::ALL {
            let idx = MemoryIndex::build(data.clone(), engine, &opts).unwrap();
            for q in queries.iter() {
                for k in [1usize, 7, 50] {
                    let want = dsidx_ucr::brute_force_knn(&data, q, k);
                    let got = idx.knn(q, k).unwrap();
                    assert_eq!(
                        got.iter().map(|m| m.pos).collect::<Vec<_>>(),
                        want.iter().map(|m| m.pos).collect::<Vec<_>>(),
                        "{} k={k}",
                        engine.name()
                    );
                }
                // nn is the k = 1 special case.
                let nn = idx.nn(q).unwrap().unwrap();
                assert_eq!(idx.knn(q, 1).unwrap()[0], nn, "{}", engine.name());
            }
        }
    }

    #[test]
    fn knn_batch_agrees_with_sequential_knn_on_all_memory_engines() {
        let data = DatasetKind::Synthetic.generate(300, 64, 37);
        let opts = Options::default().with_threads(4).with_leaf_capacity(16);
        let qs = DatasetKind::Synthetic.queries(6, 64, 37);
        let qrefs: Vec<&[f32]> = qs.iter().collect();
        for engine in Engine::ALL {
            let idx = MemoryIndex::build(data.clone(), engine, &opts).unwrap();
            let (batched, stats) = idx.knn_batch_with_stats(&qrefs, 5).unwrap();
            // The whole batch costs at most the single-query broadcast
            // budget once — not once per query.
            assert!(
                stats.broadcasts_per_query() < 1.0,
                "{}: {} broadcasts for {} queries",
                engine.name(),
                stats.broadcasts,
                qrefs.len()
            );
            for (qi, q) in qs.iter().enumerate() {
                let single = idx.knn(q, 5).unwrap();
                assert_eq!(
                    batched[qi].iter().map(|m| m.pos).collect::<Vec<_>>(),
                    single.iter().map(|m| m.pos).collect::<Vec<_>>(),
                    "{} q{qi}",
                    engine.name()
                );
            }
            // nn_batch is the k = 1 column of the same surface.
            let nns = idx.nn_batch(&qrefs).unwrap();
            for (qi, q) in qs.iter().enumerate() {
                assert_eq!(nns[qi], idx.nn(q).unwrap(), "{} q{qi}", engine.name());
            }
        }
    }

    #[test]
    fn knn_dtw_equals_brute_force_on_all_memory_engines() {
        let data = DatasetKind::Sald.generate(150, 64, 49);
        let opts = Options::default().with_threads(3).with_leaf_capacity(16);
        let qs = DatasetKind::Sald.queries(2, 64, 49);
        for engine in Engine::ALL {
            let idx = MemoryIndex::build(data.clone(), engine, &opts).unwrap();
            for q in qs.iter() {
                for k in [1usize, 6, 25] {
                    let want = dsidx_ucr::brute_force_dtw_knn(&data, q, 4, k);
                    let (got, stats) = idx.knn_dtw_with_stats(q, 4, k).unwrap();
                    assert_eq!(
                        got.iter().map(|m| m.pos).collect::<Vec<_>>(),
                        want.iter().map(|m| m.pos).collect::<Vec<_>>(),
                        "{} k={k}",
                        engine.name()
                    );
                    assert!(stats.lb_keogh_computed > 0, "{}", engine.name());
                }
                // nn_dtw is the k = 1 special case.
                let nn = idx.nn_dtw(q, 4).unwrap().unwrap();
                assert_eq!(idx.knn_dtw(q, 4, 1).unwrap()[0].pos, nn.pos);
            }
        }
    }

    #[test]
    fn dtw_stats_are_reported_for_all_engines() {
        let data = DatasetKind::Sald.generate(200, 64, 15);
        let opts = Options::default().with_threads(2).with_leaf_capacity(16);
        let q = DatasetKind::Sald.queries(1, 64, 15);
        for engine in [Engine::Messi, Engine::Paris] {
            let idx = MemoryIndex::build(data.clone(), engine, &opts).unwrap();
            let (m, stats) = idx
                .nn_dtw_with_stats(q.get(0), 4)
                .unwrap()
                .expect("non-empty");
            assert_eq!(m, idx.nn_dtw(q.get(0), 4).unwrap().unwrap());
            // Both the index path and the scan fallback report the DTW
            // cascade through the same counters.
            assert!(stats.lb_keogh_computed > 0, "{}", engine.name());
            assert!(stats.real_computed > 0, "{}", engine.name());
        }
    }

    #[test]
    fn messi_is_rejected_on_disk() {
        let dir = std::env::temp_dir().join(format!("dsidx-core-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("m.dsidx");
        let data = DatasetKind::Synthetic.generate(10, 64, 1);
        dsidx_storage::write_dataset(&path, &data, Arc::new(Device::unthrottled())).unwrap();
        let e = DiskIndex::build(
            &path,
            &dir,
            Engine::Messi,
            &Options::default(),
            DeviceProfile::UNTHROTTLED,
        );
        assert!(matches!(e, Err(Error::Unsupported(_))));
    }

    #[test]
    fn unified_query_stats_across_engines() {
        let data = DatasetKind::Synthetic.generate(300, 64, 21);
        let opts = Options::default().with_threads(2).with_leaf_capacity(16);
        let q = DatasetKind::Synthetic.queries(1, 64, 21);
        for engine in Engine::ALL {
            let idx = MemoryIndex::build(data.clone(), engine, &opts).unwrap();
            let (_, stats): (Match, QueryStats) =
                idx.nn_with_stats(q.get(0)).unwrap().expect("non-empty");
            // Every engine pays real distances (at least the seeding pass)
            // and reports lower-bound work through the same accessor.
            assert!(stats.real_computed > 0, "{}", engine.name());
            assert!(stats.lb_total() > 0, "{}", engine.name());
        }
    }

    #[test]
    fn stats_are_available() {
        let data = DatasetKind::Sald.generate(200, 64, 5);
        let opts = Options::default().with_threads(2).with_leaf_capacity(10);
        let idx = MemoryIndex::build(data, Engine::Messi, &opts).unwrap();
        let st = idx.stats();
        assert_eq!(st.entry_count, 200);
        assert!(st.leaf_count > 0);
    }
}
