//! The unified engine API: build once, query many.
//!
//! Querying goes through the **query plane**: describe the request with a
//! [`QuerySpec`] (how many neighbors, which [`Measure`], which
//! [`Fidelity`], stats or not) and execute it with
//! [`Search::search`] — one method, one internal dispatch per engine,
//! batches as the native shape (a single query is a batch of one). The
//! pre-plane method matrix (`nn`/`knn` × `_dtw` × `_batch` ×
//! `_with_stats`) survives as deprecated one-line wrappers over `search`.

use crate::answers::Answers;
use crate::error::Error;
use crate::options::Options;
use crate::search::Search;
use crate::snapshot::{open_snapshot, save_snapshot, SnapshotContents};
use crate::spec::{Fidelity, Measure, QuerySpec};
use dsidx_obs::phase::{Phase, PhaseClock};
use dsidx_query::{BatchStats, QueryStats, ShardView};
use dsidx_series::{Dataset, Match};
use dsidx_storage::{DatasetFile, Device, DeviceProfile, LeafStoreReader, RawSource};
use dsidx_tree::stats::{index_stats, IndexStats};
use dsidx_tree::FlatTree;
use std::path::{Path, PathBuf};
use std::sync::Arc;

/// Which indexing engine to use.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Engine {
    /// ADS+-style serial baseline.
    Ads,
    /// ParIS (parallel, stop-the-world stage 3).
    Paris,
    /// ParIS+ (parallel, fully overlapped construction). On-disk only;
    /// in-memory builds fall back to ParIS, which the paper itself uses
    /// for in-memory comparisons.
    ParisPlus,
    /// MESSI (parallel, tree-traversing queries). The paper's in-memory
    /// engine; here it also builds over a dataset file (streaming
    /// summarization) and answers with raw reads charged to the modeled
    /// device, so all four engines compete on one storage plane.
    Messi,
}

impl Engine {
    /// All engines.
    pub const ALL: [Engine; 4] = [Engine::Ads, Engine::Paris, Engine::ParisPlus, Engine::Messi];

    /// Display name matching the paper.
    #[must_use]
    pub fn name(self) -> &'static str {
        match self {
            Engine::Ads => "ADS+",
            Engine::Paris => "ParIS",
            Engine::ParisPlus => "ParIS+",
            Engine::Messi => "MESSI",
        }
    }
}

impl std::str::FromStr for Engine {
    type Err = String;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        match s.to_ascii_lowercase().as_str() {
            "ads" | "ads+" => Ok(Engine::Ads),
            "paris" => Ok(Engine::Paris),
            "paris+" | "parisplus" => Ok(Engine::ParisPlus),
            "messi" => Ok(Engine::Messi),
            other => Err(format!("unknown engine: {other}")),
        }
    }
}

enum MemoryInner {
    Ads(dsidx_ads::AdsIndex),
    Paris(dsidx_paris::ParisIndex),
    Messi(dsidx_messi::MessiIndex),
}

/// The shared approximate-fidelity batch loop behind both `run_spec`s:
/// approximate answering pays one best-leaf visit (ADS+, MESSI) or one
/// sketch-nearest probe pass (ParIS) per query — no broadcast — so the
/// batch is a plain loop and the batch counters report per-query work
/// only. `answer_one` maps one query to the engine's approximate call.
fn approx_batch(
    queries: &[&[f32]],
    mut answer_one: impl FnMut(&[f32]) -> Result<(Vec<Match>, QueryStats), Error>,
) -> Result<(Vec<Vec<Match>>, BatchStats), Error> {
    let mut matches = Vec::with_capacity(queries.len());
    let mut per_query = Vec::with_capacity(queries.len());
    let mut clock = PhaseClock::start();
    for (i, &q) in queries.iter().enumerate() {
        let (m, mut s) = answer_one(q).map_err(|e| match e {
            // The approximate visit is one seeding pass; engines that
            // annotated a more precise phase keep it (first wins).
            Error::Storage(e) => Error::Storage(e.in_phase(Phase::Seed.name()).for_query(i as u64)),
            other => other,
        })?;
        // Engines that time their own approximate visit already filled
        // the breakdown; charge the rest to the seeding phase they are.
        let nanos = clock.lap();
        if s.phase.is_zero() {
            s.phase.record(Phase::Seed, nanos);
        }
        matches.push(m);
        per_query.push(s);
    }
    Ok((
        matches,
        BatchStats {
            per_query,
            ..BatchStats::default()
        },
    ))
}

/// Emits one `search` trace event per [`Search::search`] call when the
/// structured trace stream is on (`DSIDX_TRACE`); one relaxed atomic load
/// when it is off.
pub(crate) fn trace_search(
    residence: &'static str,
    engine: Engine,
    queries: usize,
    spec: &QuerySpec,
) {
    if !dsidx_obs::trace::enabled() {
        return;
    }
    use dsidx_obs::trace::Value;
    let measure = match spec.measure_kind() {
        Measure::Euclidean => "euclidean",
        Measure::Dtw { .. } => "dtw",
    };
    let exact = matches!(spec.fidelity_kind(), Fidelity::Exact);
    dsidx_obs::trace::emit(
        "search",
        &[
            ("residence", Value::Str(residence)),
            ("engine", Value::Str(engine.name())),
            ("queries", Value::U64(queries as u64)),
            ("k", Value::U64(spec.k() as u64)),
            ("measure", Value::Str(measure)),
            ("exact", Value::Bool(exact)),
        ],
    );
}

/// An index over an in-memory dataset (owned via `Arc`, so clones of the
/// handle share both data and index).
pub struct MemoryIndex {
    data: Arc<Dataset>,
    engine: Engine,
    options: Options,
    inner: MemoryInner,
}

impl MemoryIndex {
    /// Builds an index over `data` with the chosen engine.
    ///
    /// `Engine::ParisPlus` builds with the ParIS in-memory path (see
    /// [`Engine::ParisPlus`] docs).
    ///
    /// # Errors
    /// Configuration errors (series length vs segments etc.).
    pub fn build(
        data: impl Into<Arc<Dataset>>,
        engine: Engine,
        options: &Options,
    ) -> Result<Self, Error> {
        let data = data.into();
        let series_len = data.series_len();
        let inner = match engine {
            Engine::Ads => {
                let (ads, _) =
                    dsidx_ads::build_from_dataset(&data, &options.tree_config(series_len)?);
                MemoryInner::Ads(ads)
            }
            Engine::Paris | Engine::ParisPlus => {
                let (paris, _) =
                    dsidx_paris::build_in_memory(&data, &options.paris_config(series_len)?);
                MemoryInner::Paris(paris)
            }
            Engine::Messi => {
                let (messi, _) = dsidx_messi::build(&data, &options.messi_config(series_len)?);
                MemoryInner::Messi(messi)
            }
        };
        Ok(Self {
            data,
            engine,
            options: options.clone(),
            inner,
        })
    }

    /// Saves the built index as a snapshot file at `path`: the tree
    /// topology and leaf entries in the versioned container format (see
    /// the `snapshot` section of the README) — the SAX words live inside
    /// the entry records, so they are not stored separately. The dataset
    /// itself is *not* embedded — [`open`](Self::open) re-pairs the
    /// snapshot with the caller's dataset and cross-checks the
    /// fingerprint. Returns the snapshot size in bytes.
    ///
    /// # Errors
    /// I/O failures writing the file.
    pub fn save(&self, path: &Path) -> Result<u64, Error> {
        let device = Arc::new(Device::unthrottled());
        let index = match &self.inner {
            MemoryInner::Ads(ads) => &ads.index,
            MemoryInner::Paris(paris) => &paris.index,
            MemoryInner::Messi(messi) => &messi.index,
        };
        save_snapshot(path, self.engine, index, None, &device)
    }

    /// Opens a snapshot saved by [`save`](Self::save) over `data` — the
    /// same dataset the snapshot was built from. No tree construction
    /// happens: the node records are decoded back into the tree in one
    /// pass, so opening costs milliseconds where building costs seconds.
    ///
    /// The engine and tree geometry (segments, leaf capacity) come from
    /// the snapshot; the corresponding fields of `options` are
    /// overridden so queries run with the geometry the tree was actually
    /// built with. The opened index answers [`Search::search`]
    /// bit-identically to the index that was saved.
    ///
    /// # Errors
    /// [`Error::Storage`] for missing/truncated/corrupt snapshots and for
    /// a fingerprint that does not match `data` (wrong dataset).
    pub fn open(
        path: &Path,
        data: impl Into<Arc<Dataset>>,
        options: &Options,
    ) -> Result<Self, Error> {
        let data = data.into();
        let device = Arc::new(Device::unthrottled());
        let contents = open_snapshot(path, &device, data.series_len(), data.len())?;
        let SnapshotContents {
            engine,
            index,
            sax,
            segments,
            leaf_capacity,
            ..
        } = contents;
        let options = options
            .clone()
            .with_segments(segments)
            .with_leaf_capacity(leaf_capacity);
        let inner = match engine {
            Engine::Ads => MemoryInner::Ads(dsidx_ads::AdsIndex { index, sax }),
            Engine::Paris | Engine::ParisPlus => MemoryInner::Paris(dsidx_paris::ParisIndex {
                index,
                sax,
                leaves: None,
            }),
            Engine::Messi => {
                let flat = FlatTree::from_index(&index);
                MemoryInner::Messi(dsidx_messi::MessiIndex { index, flat, sax })
            }
        };
        Ok(Self {
            data,
            engine,
            options,
            inner,
        })
    }

    /// The engine this index was built with.
    #[must_use]
    pub fn engine(&self) -> Engine {
        self.engine
    }

    /// The indexed dataset.
    #[must_use]
    pub fn data(&self) -> &Dataset {
        &self.data
    }

    /// The one dispatch behind [`Search::search`]: every (fidelity,
    /// measure) cell maps to one engine batch entry point, so adding an
    /// axis value is adding a match arm — never a method family.
    fn run_spec(
        &self,
        queries: &[&[f32]],
        spec: &QuerySpec,
    ) -> Result<(Vec<Vec<Match>>, BatchStats), Error> {
        self.run_spec_sharded(&*self.data, queries, spec, None)
    }

    /// [`run_spec`](Self::run_spec) parameterized for scatter-gather use
    /// by [`ShardedIndex`](crate::ShardedIndex): raw candidate reads go to
    /// `source` (normally the indexed dataset; a fault-injecting wrapper
    /// in tests), and — when `shard` is set — the exact cells feed the
    /// cross-shard pruners so a tight match in another shard raises this
    /// index's abandon thresholds mid-flight. The approximate cells
    /// ignore `shard` (per-shard trees probe independently; the
    /// coordinator merges post-hoc).
    pub(crate) fn run_spec_sharded<S: RawSource>(
        &self,
        source: &S,
        queries: &[&[f32]],
        spec: &QuerySpec,
        shard: Option<ShardView<'_>>,
    ) -> Result<(Vec<Vec<Match>>, BatchStats), Error> {
        let mut clock = PhaseClock::start();
        spec.validate(self.data.series_len(), queries)?;
        let k = spec.k();
        let threads = self.options.effective_threads();
        let prepare_nanos = clock.lap();
        let (matches, mut stats) = (match spec.fidelity_kind() {
            Fidelity::Exact => match spec.measure_kind() {
                Measure::Euclidean => match &self.inner {
                    MemoryInner::Ads(ads) => Ok(dsidx_ads::exact_knn_batch_shared(
                        ads, source, queries, k, shard,
                    )?),
                    MemoryInner::Paris(paris) => Ok(dsidx_paris::exact_knn_batch_shared(
                        paris, source, queries, k, threads, shard,
                    )?),
                    MemoryInner::Messi(messi) => {
                        let cfg = self.options.messi_config(self.data.series_len())?;
                        Ok(dsidx_messi::exact_knn_batch_shared(
                            messi, source, queries, k, &cfg, shard,
                        )?)
                    }
                },
                // Batched DTW: one broadcast through MESSI's cascade,
                // the one batched parallel UCR scan for the engines
                // without a DTW index path (still exact, just index-free).
                Measure::Dtw { band } => match &self.inner {
                    MemoryInner::Messi(messi) => {
                        let cfg = self.options.messi_config(self.data.series_len())?;
                        Ok(dsidx_messi::exact_knn_dtw_batch_shared(
                            messi, source, queries, band, k, &cfg, shard,
                        )?)
                    }
                    _ => Ok(dsidx_ucr::knn_dtw_batch_parallel_with_stats_shared(
                        source, queries, band, k, threads, shard,
                    )?),
                },
            },
            Fidelity::Approximate => approx_batch(queries, |q| {
                Ok(match (&self.inner, spec.measure_kind()) {
                    (MemoryInner::Ads(ads), Measure::Euclidean) => {
                        dsidx_ads::approx_knn(ads, source, q, k)?
                    }
                    (MemoryInner::Ads(ads), Measure::Dtw { band }) => {
                        dsidx_ads::approx_knn_dtw(ads, source, q, band, k)?
                    }
                    (MemoryInner::Paris(paris), Measure::Euclidean) => {
                        dsidx_paris::approx_knn(paris, source, q, k)?
                    }
                    (MemoryInner::Paris(paris), Measure::Dtw { band }) => {
                        dsidx_paris::approx_knn_dtw(paris, source, q, band, k)?
                    }
                    (MemoryInner::Messi(messi), Measure::Euclidean) => {
                        dsidx_messi::approx_knn(messi, source, q, k)?
                    }
                    (MemoryInner::Messi(messi), Measure::Dtw { band }) => {
                        dsidx_messi::approx_knn_dtw(messi, source, q, band, k)?
                    }
                })
            }),
        })?;
        stats.shared.phase.record(Phase::Prepare, prepare_nanos);
        Ok((matches, stats))
    }

    /// Exact 1-NN under Euclidean distance. `None` for an empty dataset.
    ///
    /// # Errors
    /// Propagates engine failures.
    #[deprecated(note = "use `Search::search` with `QuerySpec::nn()`")]
    pub fn nn(&self, query: &[f32]) -> Result<Option<Match>, Error> {
        Ok(self.search(&[query], &QuerySpec::nn())?.into_nn())
    }

    /// Exact 1-NN plus the unified per-query work counters.
    ///
    /// # Errors
    /// Propagates engine failures.
    #[deprecated(note = "use `Search::search` with `QuerySpec::nn().with_stats()`")]
    pub fn nn_with_stats(&self, query: &[f32]) -> Result<Option<(Match, QueryStats)>, Error> {
        let (matches, stats) = self
            .search(&[query], &QuerySpec::nn().with_stats())?
            .into_single_with_stats();
        Ok(matches.into_iter().next().map(|m| (m, stats)))
    }

    /// Exact k-NN under Euclidean distance: the `k` nearest series, sorted
    /// ascending by `(distance, position)`.
    ///
    /// # Errors
    /// Propagates engine failures; `k == 0` is [`Error::InvalidSpec`].
    #[deprecated(note = "use `Search::search` with `QuerySpec::knn(k)`")]
    pub fn knn(&self, query: &[f32], k: usize) -> Result<Vec<Match>, Error> {
        Ok(self.search(&[query], &QuerySpec::knn(k))?.into_single())
    }

    /// Exact k-NN plus the unified per-query work counters.
    ///
    /// # Errors
    /// Propagates engine failures; `k == 0` is [`Error::InvalidSpec`].
    #[deprecated(note = "use `Search::search` with `QuerySpec::knn(k).with_stats()`")]
    pub fn knn_with_stats(
        &self,
        query: &[f32],
        k: usize,
    ) -> Result<(Vec<Match>, QueryStats), Error> {
        Ok(self
            .search(&[query], &QuerySpec::knn(k).with_stats())?
            .into_single_with_stats())
    }

    /// Exact 1-NN for a *batch* of queries: one answer per query (in
    /// order), `None` where the dataset is empty.
    ///
    /// # Errors
    /// Propagates engine failures.
    #[deprecated(note = "use `Search::search` with `QuerySpec::nn()`")]
    pub fn nn_batch(&self, queries: &[&[f32]]) -> Result<Vec<Option<Match>>, Error> {
        if queries.is_empty() {
            return Ok(Vec::new());
        }
        Ok(self
            .search(queries, &QuerySpec::nn())?
            .into_matches()
            .into_iter()
            .map(|mut m| m.pop())
            .collect())
    }

    /// Exact k-NN for a *batch* of queries, answered by one shared engine
    /// schedule; element-wise identical to per-query [`knn`](Self::knn).
    ///
    /// # Errors
    /// Propagates engine failures; `k == 0` is [`Error::InvalidSpec`].
    #[deprecated(note = "use `Search::search` with `QuerySpec::knn(k)`")]
    pub fn knn_batch(&self, queries: &[&[f32]], k: usize) -> Result<Vec<Vec<Match>>, Error> {
        if queries.is_empty() {
            return Ok(Vec::new());
        }
        Ok(self.search(queries, &QuerySpec::knn(k))?.into_matches())
    }

    /// Exact k-NN for a batch of queries plus the [`BatchStats`] that make
    /// the amortization observable.
    ///
    /// # Errors
    /// Propagates engine failures; `k == 0` is [`Error::InvalidSpec`].
    #[deprecated(note = "use `Search::search` with `QuerySpec::knn(k).with_stats()`")]
    pub fn knn_batch_with_stats(
        &self,
        queries: &[&[f32]],
        k: usize,
    ) -> Result<(Vec<Vec<Match>>, BatchStats), Error> {
        if queries.is_empty() {
            return Ok((Vec::new(), BatchStats::default()));
        }
        Ok(self
            .search(queries, &QuerySpec::knn(k).with_stats())?
            .into_parts_with_stats())
    }

    /// Exact 1-NN under banded DTW — answered from the *same* index (§V
    /// of the paper).
    ///
    /// # Errors
    /// Configuration errors; an over-wide band is [`Error::InvalidSpec`].
    #[deprecated(
        note = "use `Search::search` with `QuerySpec::nn().measure(Measure::Dtw { band })`"
    )]
    pub fn nn_dtw(&self, query: &[f32], band: usize) -> Result<Option<Match>, Error> {
        Ok(self
            .search(&[query], &QuerySpec::nn().measure(Measure::Dtw { band }))?
            .into_nn())
    }

    /// Exact 1-NN under banded DTW plus the unified work counters for the
    /// pruning cascade (LB_Keogh prunes, early-abandoned DTWs).
    ///
    /// # Errors
    /// Configuration errors; an over-wide band is [`Error::InvalidSpec`].
    #[deprecated(
        note = "use `Search::search` with `QuerySpec::nn().measure(Measure::Dtw { band }).with_stats()`"
    )]
    pub fn nn_dtw_with_stats(
        &self,
        query: &[f32],
        band: usize,
    ) -> Result<Option<(Match, QueryStats)>, Error> {
        let spec = QuerySpec::nn().measure(Measure::Dtw { band }).with_stats();
        let (matches, stats) = self.search(&[query], &spec)?.into_single_with_stats();
        Ok(matches.into_iter().next().map(|m| (m, stats)))
    }

    /// Exact k-NN under banded DTW — answered from the same index where
    /// the engine supports it (MESSI), by the parallel UCR-DTW k-NN scan
    /// otherwise (still exact, just index-free).
    ///
    /// # Errors
    /// Configuration errors; `k == 0` or an over-wide band is
    /// [`Error::InvalidSpec`].
    #[deprecated(
        note = "use `Search::search` with `QuerySpec::knn(k).measure(Measure::Dtw { band })`"
    )]
    pub fn knn_dtw(&self, query: &[f32], band: usize, k: usize) -> Result<Vec<Match>, Error> {
        Ok(self
            .search(&[query], &QuerySpec::knn(k).measure(Measure::Dtw { band }))?
            .into_single())
    }

    /// Exact k-NN under banded DTW plus the unified work counters for the
    /// whole pruning cascade, pruned against the k-th best DTW distance.
    ///
    /// # Errors
    /// Configuration errors; `k == 0` or an over-wide band is
    /// [`Error::InvalidSpec`].
    #[deprecated(
        note = "use `Search::search` with `QuerySpec::knn(k).measure(Measure::Dtw { band }).with_stats()`"
    )]
    pub fn knn_dtw_with_stats(
        &self,
        query: &[f32],
        band: usize,
        k: usize,
    ) -> Result<(Vec<Match>, QueryStats), Error> {
        let spec = QuerySpec::knn(k)
            .measure(Measure::Dtw { band })
            .with_stats();
        Ok(self.search(&[query], &spec)?.into_single_with_stats())
    }

    /// Structural statistics of the underlying tree.
    #[must_use]
    pub fn stats(&self) -> IndexStats {
        match &self.inner {
            MemoryInner::Ads(ads) => index_stats(&ads.index),
            MemoryInner::Paris(paris) => index_stats(&paris.index),
            MemoryInner::Messi(messi) => index_stats(&messi.index),
        }
    }
}

impl Search for MemoryIndex {
    fn search(&self, queries: &[&[f32]], spec: &QuerySpec) -> Result<Answers, Error> {
        trace_search("memory", self.engine, queries.len(), spec);
        let (matches, stats) = self.run_spec(queries, spec)?;
        Ok(Answers::new(
            matches,
            spec.stats_requested().then_some(stats),
        ))
    }
}

enum DiskInner {
    Ads(dsidx_ads::AdsIndex),
    Paris(dsidx_paris::ParisIndex),
    Messi(dsidx_messi::MessiIndex),
}

/// Distinguishes the leaf-store files of concurrent (or repeated) builds
/// in one process: the pid alone collides when a process builds twice
/// into the same workdir.
static BUILD_SEQ: std::sync::atomic::AtomicU64 = std::sync::atomic::AtomicU64::new(0);

/// Where a ParIS leaf store lives: a standalone scratch file from a
/// build (`offset` 0, `len` `None` = the whole file), or a section of a
/// snapshot file after [`DiskIndex::open`].
struct StoreLocation {
    path: PathBuf,
    offset: u64,
    len: Option<u64>,
}

/// An index over an on-disk dataset file; raw values are fetched (and
/// charged to the device) at query time.
pub struct DiskIndex {
    file: DatasetFile,
    engine: Engine,
    options: Options,
    inner: DiskInner,
    build_report: Option<dsidx_paris::BuildReport>,
    store: Option<StoreLocation>,
}

impl DiskIndex {
    /// Builds an index over the dataset file at `dataset_path`, modeling
    /// the given device profile. `workdir` is created if absent and
    /// receives any engine scratch files (the ParIS leaf store).
    ///
    /// Every engine builds on disk: ADS+ and MESSI stream the file block
    /// by block (reads charged to the device), ParIS/ParIS+ run the
    /// paper's pipelined construction with a materialized leaf store.
    ///
    /// # Errors
    /// I/O and configuration failures.
    pub fn build(
        dataset_path: &Path,
        workdir: &Path,
        engine: Engine,
        options: &Options,
        profile: DeviceProfile,
    ) -> Result<Self, Error> {
        let device = Arc::new(Device::new(profile));
        let file = DatasetFile::open(dataset_path, device)?;
        let series_len = file.series_len();
        // One workdir setup for every engine (scratch files land here).
        std::fs::create_dir_all(workdir).map_err(dsidx_storage::StorageError::from)?;
        let (inner, build_report, store) = match engine {
            Engine::Ads => {
                let (ads, _) = dsidx_ads::build_from_file(
                    &file,
                    &options.tree_config(series_len)?,
                    options.block_series,
                )?;
                (DiskInner::Ads(ads), None, None)
            }
            Engine::Paris | Engine::ParisPlus => {
                let mode = if engine == Engine::Paris {
                    dsidx_paris::Overlap::Paris
                } else {
                    dsidx_paris::Overlap::ParisPlus
                };
                // ORDERING: relaxed — the counter only mints a unique
                // filename suffix; nothing is published through it.
                let store_path = workdir.join(format!(
                    "dsidx-leaves-{}-{}.store",
                    std::process::id(),
                    BUILD_SEQ.fetch_add(1, std::sync::atomic::Ordering::Relaxed),
                ));
                let (paris, report) = dsidx_paris::build_on_disk(
                    &file,
                    &store_path,
                    &options.paris_config(series_len)?,
                    mode,
                )?;
                (
                    DiskInner::Paris(paris),
                    Some(report),
                    Some(StoreLocation {
                        path: store_path,
                        offset: 0,
                        len: None,
                    }),
                )
            }
            Engine::Messi => {
                let (messi, _) = dsidx_messi::build_from_file(
                    &file,
                    &options.messi_config(series_len)?,
                    options.block_series,
                )?;
                (DiskInner::Messi(messi), None, None)
            }
        };
        Ok(Self {
            file,
            engine,
            options: options.clone(),
            inner,
            build_report,
            store,
        })
    }

    /// Saves the built index as a snapshot file at `path`: tree topology,
    /// leaf entries, SAX words, and — for ParIS/ParIS+ — the materialized
    /// leaf store, embedded verbatim as a section. The dataset file is
    /// *not* embedded; [`open`](Self::open) re-pairs the snapshot with it
    /// and cross-checks the fingerprint. All reads and the write are
    /// charged to this index's modeled device. Returns the snapshot size
    /// in bytes.
    ///
    /// # Errors
    /// I/O failures reading the leaf store or writing the snapshot.
    pub fn save(&self, path: &Path) -> Result<u64, Error> {
        let leaf_store = self.read_store_bytes()?;
        let index = match &self.inner {
            DiskInner::Ads(ads) => &ads.index,
            DiskInner::Paris(paris) => &paris.index,
            DiskInner::Messi(messi) => &messi.index,
        };
        save_snapshot(path, self.engine, index, leaf_store, self.file.device())
    }

    /// The raw bytes of the leaf store this index answers from, charged
    /// to the device as one sequential read. `None` for engines without a
    /// store.
    fn read_store_bytes(&self) -> Result<Option<Vec<u8>>, Error> {
        use std::os::unix::fs::FileExt;
        let Some(loc) = &self.store else {
            return Ok(None);
        };
        let file = std::fs::File::open(&loc.path).map_err(dsidx_storage::StorageError::from)?;
        let len = match loc.len {
            Some(len) => len,
            None => {
                let total = file
                    .metadata()
                    .map_err(dsidx_storage::StorageError::from)?
                    .len();
                total - loc.offset
            }
        };
        let mut bytes = vec![0u8; usize::try_from(len).expect("store fits memory")];
        file.read_exact_at(&mut bytes, loc.offset)
            .map_err(dsidx_storage::StorageError::from)?;
        self.file.device().charge_read(loc.offset, len);
        Ok(Some(bytes))
    }

    /// Opens a snapshot saved by [`save`](Self::save), re-pairing it with
    /// the dataset file at `dataset_path` on a device with the given
    /// profile. No tree construction happens — decode is one positioned
    /// read per section, all charged to the device — so opening costs
    /// milliseconds where building costs seconds of modeled I/O.
    ///
    /// ParIS/ParIS+ leaf reads are served straight from the leaf-store
    /// section *inside* the snapshot file; no scratch files are written.
    /// The engine and tree geometry come from the snapshot (the
    /// corresponding `options` fields are overridden), and the opened
    /// index answers [`Search::search`] bit-identically to the one that
    /// was saved.
    ///
    /// # Errors
    /// [`Error::Storage`] for missing/truncated/corrupt snapshots and for
    /// a fingerprint that does not match the dataset file.
    pub fn open(
        snapshot_path: &Path,
        dataset_path: &Path,
        options: &Options,
        profile: DeviceProfile,
    ) -> Result<Self, Error> {
        let device = Arc::new(Device::new(profile));
        let file = DatasetFile::open(dataset_path, Arc::clone(&device))?;
        let contents = open_snapshot(snapshot_path, &device, file.series_len(), file.count())?;
        let SnapshotContents {
            engine,
            index,
            sax,
            leaf_store,
            segments,
            leaf_capacity,
        } = contents;
        let options = options
            .clone()
            .with_segments(segments)
            .with_leaf_capacity(leaf_capacity);
        let (inner, store) = match engine {
            Engine::Ads => (DiskInner::Ads(dsidx_ads::AdsIndex { index, sax }), None),
            Engine::Paris | Engine::ParisPlus => {
                let (leaves, store) = match leaf_store {
                    Some((offset, len, bytes)) => {
                        let reader = LeafStoreReader::from_verified_bytes(
                            snapshot_path,
                            offset,
                            &bytes,
                            Arc::clone(&device),
                        )?;
                        (
                            Some(reader),
                            Some(StoreLocation {
                                path: snapshot_path.to_path_buf(),
                                offset,
                                len: Some(len),
                            }),
                        )
                    }
                    None => (None, None),
                };
                (
                    DiskInner::Paris(dsidx_paris::ParisIndex { index, sax, leaves }),
                    store,
                )
            }
            Engine::Messi => {
                let flat = FlatTree::from_index(&index);
                (
                    DiskInner::Messi(dsidx_messi::MessiIndex { index, flat, sax }),
                    None,
                )
            }
        };
        Ok(Self {
            file,
            engine,
            options,
            inner,
            build_report: None,
            store,
        })
    }

    /// The engine this index was built with.
    #[must_use]
    pub fn engine(&self) -> Engine {
        self.engine
    }

    /// The dataset file the index answers from.
    #[must_use]
    pub fn file(&self) -> &DatasetFile {
        &self.file
    }

    /// Build time decomposition (ParIS/ParIS+ only).
    #[must_use]
    pub fn build_report(&self) -> Option<&dsidx_paris::BuildReport> {
        self.build_report.as_ref()
    }

    /// The one dispatch behind [`Search::search`] for on-disk indexes
    /// (see [`MemoryIndex::run_spec`]): the same engine entry points as in
    /// memory, handed the dataset file as the raw source, so candidate
    /// reads are charged to the modeled device. Every (fidelity, measure)
    /// cell is answered — exact DTW runs MESSI's generic cascade on its
    /// own tree and the batched parallel UCR-DTW scan over the file for
    /// the engines without a DTW index path.
    fn run_spec(
        &self,
        queries: &[&[f32]],
        spec: &QuerySpec,
    ) -> Result<(Vec<Vec<Match>>, BatchStats), Error> {
        self.run_spec_sharded(&self.file, queries, spec, None)
    }

    /// [`run_spec`](Self::run_spec) parameterized for scatter-gather use
    /// (see [`MemoryIndex::run_spec_sharded`]): `source` is normally the
    /// index's own dataset file, `shard` threads the cross-shard pruners
    /// through the exact cells.
    pub(crate) fn run_spec_sharded<S: RawSource>(
        &self,
        source: &S,
        queries: &[&[f32]],
        spec: &QuerySpec,
        shard: Option<ShardView<'_>>,
    ) -> Result<(Vec<Vec<Match>>, BatchStats), Error> {
        let mut clock = PhaseClock::start();
        spec.validate(self.file.series_len(), queries)?;
        let k = spec.k();
        let threads = self.options.effective_threads();
        let prepare_nanos = clock.lap();
        let (matches, mut stats) = (match spec.fidelity_kind() {
            Fidelity::Exact => match spec.measure_kind() {
                Measure::Euclidean => match &self.inner {
                    DiskInner::Ads(ads) => Ok(dsidx_ads::exact_knn_batch_shared(
                        ads, source, queries, k, shard,
                    )?),
                    DiskInner::Paris(paris) => Ok(dsidx_paris::exact_knn_batch_shared(
                        paris, source, queries, k, threads, shard,
                    )?),
                    DiskInner::Messi(messi) => {
                        let cfg = self.options.messi_config(self.file.series_len())?;
                        Ok(dsidx_messi::exact_knn_batch_shared(
                            messi, source, queries, k, &cfg, shard,
                        )?)
                    }
                },
                Measure::Dtw { band } => match &self.inner {
                    DiskInner::Messi(messi) => {
                        let cfg = self.options.messi_config(self.file.series_len())?;
                        Ok(dsidx_messi::exact_knn_dtw_batch_shared(
                            messi, source, queries, band, k, &cfg, shard,
                        )?)
                    }
                    _ => Ok(dsidx_ucr::knn_dtw_batch_parallel_with_stats_shared(
                        source, queries, band, k, threads, shard,
                    )?),
                },
            },
            Fidelity::Approximate => approx_batch(queries, |q| {
                Ok(match (&self.inner, spec.measure_kind()) {
                    (DiskInner::Ads(ads), Measure::Euclidean) => {
                        dsidx_ads::approx_knn(ads, source, q, k)?
                    }
                    (DiskInner::Ads(ads), Measure::Dtw { band }) => {
                        dsidx_ads::approx_knn_dtw(ads, source, q, band, k)?
                    }
                    (DiskInner::Paris(paris), Measure::Euclidean) => {
                        dsidx_paris::approx_knn(paris, source, q, k)?
                    }
                    (DiskInner::Paris(paris), Measure::Dtw { band }) => {
                        dsidx_paris::approx_knn_dtw(paris, source, q, band, k)?
                    }
                    (DiskInner::Messi(messi), Measure::Euclidean) => {
                        dsidx_messi::approx_knn(messi, source, q, k)?
                    }
                    (DiskInner::Messi(messi), Measure::Dtw { band }) => {
                        dsidx_messi::approx_knn_dtw(messi, source, q, band, k)?
                    }
                })
            }),
        })?;
        stats.shared.phase.record(Phase::Prepare, prepare_nanos);
        Ok((matches, stats))
    }

    /// Exact 1-NN under Euclidean distance; raw reads go to the modeled
    /// device. `None` for an empty dataset.
    ///
    /// # Errors
    /// Propagates I/O failures.
    #[deprecated(note = "use `Search::search` with `QuerySpec::nn()`")]
    pub fn nn(&self, query: &[f32]) -> Result<Option<Match>, Error> {
        Ok(self.search(&[query], &QuerySpec::nn())?.into_nn())
    }

    /// Exact 1-NN plus the unified per-query work counters.
    ///
    /// # Errors
    /// Propagates I/O failures.
    #[deprecated(note = "use `Search::search` with `QuerySpec::nn().with_stats()`")]
    pub fn nn_with_stats(&self, query: &[f32]) -> Result<Option<(Match, QueryStats)>, Error> {
        let (matches, stats) = self
            .search(&[query], &QuerySpec::nn().with_stats())?
            .into_single_with_stats();
        Ok(matches.into_iter().next().map(|m| (m, stats)))
    }

    /// Exact k-NN under Euclidean distance; raw reads for candidate
    /// verification go to the modeled device.
    ///
    /// # Errors
    /// Propagates I/O failures; `k == 0` is [`Error::InvalidSpec`].
    #[deprecated(note = "use `Search::search` with `QuerySpec::knn(k)`")]
    pub fn knn(&self, query: &[f32], k: usize) -> Result<Vec<Match>, Error> {
        Ok(self.search(&[query], &QuerySpec::knn(k))?.into_single())
    }

    /// Exact k-NN plus the unified per-query work counters.
    ///
    /// # Errors
    /// Propagates I/O failures; `k == 0` is [`Error::InvalidSpec`].
    #[deprecated(note = "use `Search::search` with `QuerySpec::knn(k).with_stats()`")]
    pub fn knn_with_stats(
        &self,
        query: &[f32],
        k: usize,
    ) -> Result<(Vec<Match>, QueryStats), Error> {
        Ok(self
            .search(&[query], &QuerySpec::knn(k).with_stats())?
            .into_single_with_stats())
    }

    /// Exact 1-NN for a *batch* of queries; raw reads go to the modeled
    /// device.
    ///
    /// # Errors
    /// Propagates I/O failures.
    #[deprecated(note = "use `Search::search` with `QuerySpec::nn()`")]
    pub fn nn_batch(&self, queries: &[&[f32]]) -> Result<Vec<Option<Match>>, Error> {
        if queries.is_empty() {
            return Ok(Vec::new());
        }
        Ok(self
            .search(queries, &QuerySpec::nn())?
            .into_matches()
            .into_iter()
            .map(|mut m| m.pop())
            .collect())
    }

    /// Exact k-NN for a *batch* of queries answered by one shared engine
    /// schedule; candidate verification fetches each raw series at most
    /// once per step for the whole batch, charged to the modeled device.
    ///
    /// # Errors
    /// Propagates I/O failures; `k == 0` is [`Error::InvalidSpec`].
    #[deprecated(note = "use `Search::search` with `QuerySpec::knn(k)`")]
    pub fn knn_batch(&self, queries: &[&[f32]], k: usize) -> Result<Vec<Vec<Match>>, Error> {
        if queries.is_empty() {
            return Ok(Vec::new());
        }
        Ok(self.search(queries, &QuerySpec::knn(k))?.into_matches())
    }

    /// Exact k-NN for a batch of queries plus the [`BatchStats`].
    ///
    /// # Errors
    /// Propagates I/O failures; `k == 0` is [`Error::InvalidSpec`].
    #[deprecated(note = "use `Search::search` with `QuerySpec::knn(k).with_stats()`")]
    pub fn knn_batch_with_stats(
        &self,
        queries: &[&[f32]],
        k: usize,
    ) -> Result<(Vec<Vec<Match>>, BatchStats), Error> {
        if queries.is_empty() {
            return Ok((Vec::new(), BatchStats::default()));
        }
        Ok(self
            .search(queries, &QuerySpec::knn(k).with_stats())?
            .into_parts_with_stats())
    }

    /// Structural statistics of the underlying tree.
    #[must_use]
    pub fn stats(&self) -> IndexStats {
        match &self.inner {
            DiskInner::Ads(ads) => index_stats(&ads.index),
            DiskInner::Paris(paris) => index_stats(&paris.index),
            DiskInner::Messi(messi) => index_stats(&messi.index),
        }
    }
}

impl Search for DiskIndex {
    fn search(&self, queries: &[&[f32]], spec: &QuerySpec) -> Result<Answers, Error> {
        trace_search("disk", self.engine, queries.len(), spec);
        let (matches, stats) = self.run_spec(queries, spec)?;
        Ok(Answers::new(
            matches,
            spec.stats_requested().then_some(stats),
        ))
    }
}

#[cfg(test)]
mod tests {
    // The legacy matrix stays covered on purpose: these tests pin the
    // wrapper behavior the equivalence suite (tests/query_plane.rs)
    // relates to the QuerySpec spellings.
    #![allow(deprecated)]

    use super::*;
    use crate::error::InvalidSpec;
    use dsidx_series::gen::DatasetKind;

    #[test]
    fn engine_parsing_and_names() {
        assert_eq!("messi".parse::<Engine>().unwrap(), Engine::Messi);
        assert_eq!("ParIS+".parse::<Engine>().unwrap(), Engine::ParisPlus);
        assert_eq!("ads+".parse::<Engine>().unwrap(), Engine::Ads);
        assert!("foo".parse::<Engine>().is_err());
        assert_eq!(Engine::Messi.name(), "MESSI");
    }

    #[test]
    fn all_memory_engines_agree() {
        let data = DatasetKind::Synthetic.generate(400, 64, 77);
        let opts = Options::default().with_threads(4).with_leaf_capacity(16);
        let queries = DatasetKind::Synthetic.queries(5, 64, 77);
        let indexes: Vec<MemoryIndex> = Engine::ALL
            .iter()
            .map(|&e| MemoryIndex::build(data.clone(), e, &opts).unwrap())
            .collect();
        for q in queries.iter() {
            let want = dsidx_ucr::brute_force(&data, q).unwrap();
            for idx in &indexes {
                let got = idx.nn(q).unwrap().unwrap();
                assert_eq!(got.pos, want.pos, "{}", idx.engine().name());
            }
        }
    }

    #[test]
    fn knn_agrees_with_brute_force_on_all_memory_engines() {
        let data = DatasetKind::Synthetic.generate(350, 64, 91);
        let opts = Options::default().with_threads(4).with_leaf_capacity(16);
        let queries = DatasetKind::Synthetic.queries(3, 64, 91);
        for engine in Engine::ALL {
            let idx = MemoryIndex::build(data.clone(), engine, &opts).unwrap();
            for q in queries.iter() {
                for k in [1usize, 7, 50] {
                    let want = dsidx_ucr::brute_force_knn(&data, q, k);
                    let got = idx.knn(q, k).unwrap();
                    assert_eq!(
                        got.iter().map(|m| m.pos).collect::<Vec<_>>(),
                        want.iter().map(|m| m.pos).collect::<Vec<_>>(),
                        "{} k={k}",
                        engine.name()
                    );
                }
                // nn is the k = 1 special case.
                let nn = idx.nn(q).unwrap().unwrap();
                assert_eq!(idx.knn(q, 1).unwrap()[0], nn, "{}", engine.name());
            }
        }
    }

    #[test]
    fn knn_batch_agrees_with_sequential_knn_on_all_memory_engines() {
        let data = DatasetKind::Synthetic.generate(300, 64, 37);
        let opts = Options::default().with_threads(4).with_leaf_capacity(16);
        let qs = DatasetKind::Synthetic.queries(6, 64, 37);
        let qrefs: Vec<&[f32]> = qs.iter().collect();
        for engine in Engine::ALL {
            let idx = MemoryIndex::build(data.clone(), engine, &opts).unwrap();
            let (batched, stats) = idx.knn_batch_with_stats(&qrefs, 5).unwrap();
            // The whole batch costs at most the single-query broadcast
            // budget once — not once per query.
            assert!(
                stats.broadcasts_per_query() < 1.0,
                "{}: {} broadcasts for {} queries",
                engine.name(),
                stats.broadcasts,
                qrefs.len()
            );
            for (qi, q) in qs.iter().enumerate() {
                let single = idx.knn(q, 5).unwrap();
                assert_eq!(
                    batched[qi].iter().map(|m| m.pos).collect::<Vec<_>>(),
                    single.iter().map(|m| m.pos).collect::<Vec<_>>(),
                    "{} q{qi}",
                    engine.name()
                );
            }
            // nn_batch is the k = 1 column of the same surface.
            let nns = idx.nn_batch(&qrefs).unwrap();
            for (qi, q) in qs.iter().enumerate() {
                assert_eq!(nns[qi], idx.nn(q).unwrap(), "{} q{qi}", engine.name());
            }
        }
    }

    #[test]
    fn knn_dtw_equals_brute_force_on_all_memory_engines() {
        let data = DatasetKind::Sald.generate(150, 64, 49);
        let opts = Options::default().with_threads(3).with_leaf_capacity(16);
        let qs = DatasetKind::Sald.queries(2, 64, 49);
        for engine in Engine::ALL {
            let idx = MemoryIndex::build(data.clone(), engine, &opts).unwrap();
            for q in qs.iter() {
                for k in [1usize, 6, 25] {
                    let want = dsidx_ucr::brute_force_dtw_knn(&data, q, 4, k);
                    let (got, stats) = idx.knn_dtw_with_stats(q, 4, k).unwrap();
                    assert_eq!(
                        got.iter().map(|m| m.pos).collect::<Vec<_>>(),
                        want.iter().map(|m| m.pos).collect::<Vec<_>>(),
                        "{} k={k}",
                        engine.name()
                    );
                    assert!(stats.lb_keogh_computed > 0, "{}", engine.name());
                }
                // nn_dtw is the k = 1 special case.
                let nn = idx.nn_dtw(q, 4).unwrap().unwrap();
                assert_eq!(idx.knn_dtw(q, 4, 1).unwrap()[0].pos, nn.pos);
            }
        }
    }

    #[test]
    fn batched_dtw_search_is_one_broadcast_on_messi() {
        let data = DatasetKind::Sald.generate(200, 64, 53);
        let opts = Options::default().with_threads(3).with_leaf_capacity(16);
        let qs = DatasetKind::Sald.queries(4, 64, 53);
        let qrefs: Vec<&[f32]> = qs.iter().collect();
        let idx = MemoryIndex::build(data.clone(), Engine::Messi, &opts).unwrap();
        let spec = QuerySpec::knn(3)
            .measure(Measure::Dtw { band: 4 })
            .with_stats();
        let answers = idx.search(&qrefs, &spec).unwrap();
        let stats = answers.stats().unwrap();
        assert_eq!(stats.broadcasts, 1, "one broadcast for the whole DTW batch");
        for (qi, q) in qs.iter().enumerate() {
            let want = dsidx_ucr::brute_force_dtw_knn(&data, q, 4, 3);
            assert_eq!(
                answers.matches()[qi]
                    .iter()
                    .map(|m| m.pos)
                    .collect::<Vec<_>>(),
                want.iter().map(|m| m.pos).collect::<Vec<_>>(),
                "q{qi}"
            );
        }
    }

    #[test]
    fn approximate_search_never_beats_exact_on_any_engine() {
        let data = DatasetKind::Synthetic.generate(500, 64, 29);
        let opts = Options::default().with_threads(3).with_leaf_capacity(16);
        let qs = DatasetKind::Synthetic.queries(3, 64, 29);
        let qrefs: Vec<&[f32]> = qs.iter().collect();
        for engine in Engine::ALL {
            let idx = MemoryIndex::build(data.clone(), engine, &opts).unwrap();
            for measure in [Measure::Euclidean, Measure::Dtw { band: 4 }] {
                let exact = idx
                    .search(&qrefs, &QuerySpec::knn(5).measure(measure))
                    .unwrap();
                let approx = idx
                    .search(
                        &qrefs,
                        &QuerySpec::knn(5)
                            .measure(measure)
                            .fidelity(Fidelity::Approximate)
                            .with_stats(),
                    )
                    .unwrap();
                assert_eq!(approx.stats().unwrap().broadcasts, 0);
                for qi in 0..qrefs.len() {
                    for (a, e) in approx.matches()[qi].iter().zip(&exact.matches()[qi]) {
                        assert!(
                            a.dist_sq >= e.dist_sq - e.dist_sq * 1e-6,
                            "{} {measure:?} q{qi}",
                            engine.name()
                        );
                    }
                }
            }
        }
    }

    #[test]
    fn invalid_specs_are_rejected_with_structured_errors() {
        let data = DatasetKind::Synthetic.generate(50, 64, 3);
        let idx = MemoryIndex::build(data, Engine::Ads, &Options::default()).unwrap();
        let q = vec![0.0f32; 64];
        let qs: Vec<&[f32]> = vec![&q];
        assert!(matches!(
            idx.search(&qs, &QuerySpec::knn(0)),
            Err(Error::InvalidSpec(InvalidSpec::ZeroK))
        ));
        assert!(matches!(
            idx.search(&[], &QuerySpec::nn()),
            Err(Error::InvalidSpec(InvalidSpec::EmptyBatch))
        ));
        assert!(matches!(
            idx.search(&qs, &QuerySpec::nn().measure(Measure::Dtw { band: 64 })),
            Err(Error::InvalidSpec(InvalidSpec::BandTooWide { .. }))
        ));
        let short = vec![0.0f32; 8];
        let bad: Vec<&[f32]> = vec![&q, &short];
        assert!(matches!(
            idx.search(&bad, &QuerySpec::nn()),
            Err(Error::InvalidSpec(InvalidSpec::QueryLength {
                index: 1,
                ..
            }))
        ));
        // The legacy wrappers surface the same structured errors.
        assert!(matches!(
            idx.knn(&q, 0),
            Err(Error::InvalidSpec(InvalidSpec::ZeroK))
        ));
    }

    #[test]
    fn dtw_stats_are_reported_for_all_engines() {
        let data = DatasetKind::Sald.generate(200, 64, 15);
        let opts = Options::default().with_threads(2).with_leaf_capacity(16);
        let q = DatasetKind::Sald.queries(1, 64, 15);
        for engine in [Engine::Messi, Engine::Paris] {
            let idx = MemoryIndex::build(data.clone(), engine, &opts).unwrap();
            let (m, stats) = idx
                .nn_dtw_with_stats(q.get(0), 4)
                .unwrap()
                .expect("non-empty");
            assert_eq!(m, idx.nn_dtw(q.get(0), 4).unwrap().unwrap());
            // Both the index path and the scan fallback report the DTW
            // cascade through the same counters.
            assert!(stats.lb_keogh_computed > 0, "{}", engine.name());
            assert!(stats.real_computed > 0, "{}", engine.name());
        }
    }

    #[test]
    fn messi_builds_and_answers_on_disk() {
        let dir = std::env::temp_dir().join(format!("dsidx-core-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("m.dsidx");
        let data = DatasetKind::Synthetic.generate(300, 64, 1);
        dsidx_storage::write_dataset(&path, &data, Arc::new(Device::unthrottled())).unwrap();
        let idx = DiskIndex::build(
            &path,
            &dir,
            Engine::Messi,
            &Options::default().with_threads(3).with_leaf_capacity(16),
            DeviceProfile::UNTHROTTLED,
        )
        .unwrap();
        assert_eq!(idx.stats().entry_count, 300);
        let q = DatasetKind::Synthetic.queries(2, 64, 1);
        let qs: Vec<&[f32]> = q.iter().collect();
        let got = idx.search(&qs, &QuerySpec::knn(5).with_stats()).unwrap();
        for (qi, query) in q.iter().enumerate() {
            let want = dsidx_ucr::brute_force_knn(&data, query, 5);
            assert_eq!(
                got.matches()[qi].iter().map(|m| m.pos).collect::<Vec<_>>(),
                want.iter().map(|m| m.pos).collect::<Vec<_>>(),
                "q{qi}"
            );
        }
        // The in-memory invariant survives the move to disk: one
        // broadcast answers the whole batch.
        assert_eq!(got.stats().unwrap().broadcasts, 1);
    }

    #[test]
    fn disk_search_answers_every_fidelity_measure_cell() {
        // No `Unsupported` cells remain in the on-disk query plane: every
        // engine answers exact/approximate x ED/DTW over the file.
        let dir = std::env::temp_dir().join(format!("dsidx-core-dtw-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("d.dsidx");
        let data = DatasetKind::Seismic.generate(200, 64, 5);
        dsidx_storage::write_dataset(&path, &data, Arc::new(Device::unthrottled())).unwrap();
        let q = DatasetKind::Seismic.queries(1, 64, 5);
        let qs: Vec<&[f32]> = vec![q.get(0)];
        for engine in Engine::ALL {
            let idx = DiskIndex::build(
                &path,
                &dir,
                engine,
                &Options::default().with_threads(2),
                DeviceProfile::UNTHROTTLED,
            )
            .unwrap();
            for measure in [Measure::Euclidean, Measure::Dtw { band: 4 }] {
                let exact = idx
                    .search(&qs, &QuerySpec::knn(3).measure(measure))
                    .unwrap();
                let want = match measure {
                    Measure::Dtw { band } => {
                        dsidx_ucr::brute_force_dtw_knn(&data, q.get(0), band, 3)
                    }
                    _ => dsidx_ucr::brute_force_knn(&data, q.get(0), 3),
                };
                assert_eq!(
                    exact.matches()[0].iter().map(|m| m.pos).collect::<Vec<_>>(),
                    want.iter().map(|m| m.pos).collect::<Vec<_>>(),
                    "{} {measure:?}",
                    engine.name()
                );
                let spec = QuerySpec::knn(3)
                    .measure(measure)
                    .fidelity(Fidelity::Approximate);
                let approx = idx.search(&qs, &spec).unwrap();
                assert!(!approx.matches()[0].is_empty());
                for (a, e) in approx.matches()[0].iter().zip(&want) {
                    assert!(
                        a.dist_sq >= e.dist_sq - e.dist_sq * 1e-6,
                        "{} {measure:?}",
                        engine.name()
                    );
                }
            }
        }
    }

    #[test]
    fn repeated_disk_builds_in_one_process_do_not_collide() {
        // The pid-named store file is sequence-suffixed: two live ParIS
        // indexes from one process must not share (and clobber) one leaf
        // store.
        let dir = std::env::temp_dir().join(format!("dsidx-core-seq-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("s.dsidx");
        let data = DatasetKind::Synthetic.generate(150, 64, 3);
        dsidx_storage::write_dataset(&path, &data, Arc::new(Device::unthrottled())).unwrap();
        let opts = Options::default().with_threads(2);
        let a = DiskIndex::build(
            &path,
            &dir,
            Engine::ParisPlus,
            &opts,
            DeviceProfile::UNTHROTTLED,
        )
        .unwrap();
        let b = DiskIndex::build(
            &path,
            &dir,
            Engine::ParisPlus,
            &opts,
            DeviceProfile::UNTHROTTLED,
        )
        .unwrap();
        assert_ne!(
            a.store.as_ref().map(|s| &s.path),
            b.store.as_ref().map(|s| &s.path)
        );
        let q = DatasetKind::Synthetic.queries(1, 64, 3);
        // Both indexes still answer (neither's store was truncated by the
        // other's build).
        let qa = a.search(&[q.get(0)], &QuerySpec::nn()).unwrap().into_nn();
        let qb = b.search(&[q.get(0)], &QuerySpec::nn()).unwrap().into_nn();
        assert_eq!(qa.map(|m| m.pos), qb.map(|m| m.pos));
    }

    #[test]
    fn unified_query_stats_across_engines() {
        let data = DatasetKind::Synthetic.generate(300, 64, 21);
        let opts = Options::default().with_threads(2).with_leaf_capacity(16);
        let q = DatasetKind::Synthetic.queries(1, 64, 21);
        for engine in Engine::ALL {
            let idx = MemoryIndex::build(data.clone(), engine, &opts).unwrap();
            let (_, stats): (Match, QueryStats) =
                idx.nn_with_stats(q.get(0)).unwrap().expect("non-empty");
            // Every engine pays real distances (at least the seeding pass)
            // and reports lower-bound work through the same accessor.
            assert!(stats.real_computed > 0, "{}", engine.name());
            assert!(stats.lb_total() > 0, "{}", engine.name());
        }
    }

    fn memory_tree(idx: &MemoryIndex) -> &dsidx_tree::Index {
        match &idx.inner {
            MemoryInner::Ads(x) => &x.index,
            MemoryInner::Paris(x) => &x.index,
            MemoryInner::Messi(x) => &x.index,
        }
    }

    fn disk_tree(idx: &DiskIndex) -> &dsidx_tree::Index {
        match &idx.inner {
            DiskInner::Ads(x) => &x.index,
            DiskInner::Paris(x) => &x.index,
            DiskInner::Messi(x) => &x.index,
        }
    }

    #[test]
    fn memory_snapshot_round_trips_structurally_identical_trees() {
        let dir = std::env::temp_dir().join(format!("dsidx-snap-mem-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let data = DatasetKind::Synthetic.generate(300, 64, 11);
        let opts = Options::default().with_threads(3).with_leaf_capacity(16);
        for engine in Engine::ALL {
            let built = MemoryIndex::build(data.clone(), engine, &opts).unwrap();
            let path = dir.join(format!("m-{}.snap", engine.name().replace('+', "p")));
            let bytes = built.save(&path).unwrap();
            assert_eq!(bytes, std::fs::metadata(&path).unwrap().len());
            // Opening with *different* defaults must still reproduce the
            // saved geometry — the snapshot's fingerprint wins.
            let opened = MemoryIndex::open(&path, data.clone(), &Options::default()).unwrap();
            assert_eq!(opened.engine(), engine);
            // The decoded tree is structurally *equal* to the built one,
            // node for node (Index derives PartialEq) — the strongest
            // form of "no reconstruction drift".
            assert_eq!(
                memory_tree(&built),
                memory_tree(&opened),
                "{}",
                engine.name()
            );
        }
    }

    #[test]
    fn disk_snapshot_round_trips_structurally_identical_trees() {
        let dir = std::env::temp_dir().join(format!("dsidx-snap-disk-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("d.dsidx");
        let data = DatasetKind::Synthetic.generate(250, 64, 13);
        dsidx_storage::write_dataset(&path, &data, Arc::new(Device::unthrottled())).unwrap();
        let opts = Options::default().with_threads(3).with_leaf_capacity(16);
        let q = DatasetKind::Synthetic.queries(2, 64, 13);
        let qs: Vec<&[f32]> = q.iter().collect();
        for engine in Engine::ALL {
            let built =
                DiskIndex::build(&path, &dir, engine, &opts, DeviceProfile::UNTHROTTLED).unwrap();
            let snap = dir.join(format!("d-{}.snap", engine.name().replace('+', "p")));
            built.save(&snap).unwrap();
            let opened = DiskIndex::open(
                &snap,
                &path,
                &Options::default(),
                DeviceProfile::UNTHROTTLED,
            )
            .unwrap();
            assert_eq!(opened.engine(), engine);
            assert_eq!(disk_tree(&built), disk_tree(&opened), "{}", engine.name());
            // ParIS answers exact queries through the leaf store embedded
            // in the snapshot file — same answers as the scratch-file one.
            let a = built.search(&qs, &QuerySpec::knn(5)).unwrap();
            let b = opened.search(&qs, &QuerySpec::knn(5)).unwrap();
            assert_eq!(a.matches(), b.matches(), "{}", engine.name());
        }
    }

    #[test]
    fn snapshot_open_rejects_the_wrong_dataset() {
        let dir = std::env::temp_dir().join(format!("dsidx-snap-wrong-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let data = DatasetKind::Synthetic.generate(120, 64, 17);
        let idx = MemoryIndex::build(data, Engine::Ads, &Options::default()).unwrap();
        let path = dir.join("a.snap");
        idx.save(&path).unwrap();
        // Wrong count.
        let other = DatasetKind::Synthetic.generate(121, 64, 17);
        let Err(err) = MemoryIndex::open(&path, other, &Options::default()) else {
            panic!("wrong count accepted");
        };
        assert!(err.to_string().contains("fingerprint"), "{err}");
        // Wrong series length.
        let other = DatasetKind::Synthetic.generate(120, 32, 17);
        let Err(err) = MemoryIndex::open(&path, other, &Options::default()) else {
            panic!("wrong series length accepted");
        };
        assert!(err.to_string().contains("fingerprint"), "{err}");
    }

    #[test]
    fn stats_are_available() {
        let data = DatasetKind::Sald.generate(200, 64, 5);
        let opts = Options::default().with_threads(2).with_leaf_capacity(10);
        let idx = MemoryIndex::build(data, Engine::Messi, &opts).unwrap();
        let st = idx.stats();
        assert_eq!(st.entry_count, 200);
        assert!(st.leaf_count > 0);
    }
}
