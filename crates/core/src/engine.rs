//! The unified engine API: build once, query many.

use crate::error::Error;
use crate::options::Options;
use dsidx_query::QueryStats;
use dsidx_series::{Dataset, Match};
use dsidx_storage::{DatasetFile, Device, DeviceProfile};
use dsidx_tree::stats::{index_stats, IndexStats};
use std::path::{Path, PathBuf};
use std::sync::Arc;

/// Which indexing engine to use.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Engine {
    /// ADS+-style serial baseline.
    Ads,
    /// ParIS (parallel, stop-the-world stage 3).
    Paris,
    /// ParIS+ (parallel, fully overlapped construction). On-disk only;
    /// in-memory builds fall back to ParIS, which the paper itself uses
    /// for in-memory comparisons.
    ParisPlus,
    /// MESSI (parallel, in-memory). In-memory only.
    Messi,
}

impl Engine {
    /// All engines.
    pub const ALL: [Engine; 4] = [Engine::Ads, Engine::Paris, Engine::ParisPlus, Engine::Messi];

    /// Display name matching the paper.
    #[must_use]
    pub fn name(self) -> &'static str {
        match self {
            Engine::Ads => "ADS+",
            Engine::Paris => "ParIS",
            Engine::ParisPlus => "ParIS+",
            Engine::Messi => "MESSI",
        }
    }
}

impl std::str::FromStr for Engine {
    type Err = String;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        match s.to_ascii_lowercase().as_str() {
            "ads" | "ads+" => Ok(Engine::Ads),
            "paris" => Ok(Engine::Paris),
            "paris+" | "parisplus" => Ok(Engine::ParisPlus),
            "messi" => Ok(Engine::Messi),
            other => Err(format!("unknown engine: {other}")),
        }
    }
}

enum MemoryInner {
    Ads(dsidx_ads::AdsIndex),
    Paris(dsidx_paris::ParisIndex),
    Messi(dsidx_messi::MessiIndex),
}

/// An index over an in-memory dataset (owned via `Arc`, so clones of the
/// handle share both data and index).
pub struct MemoryIndex {
    data: Arc<Dataset>,
    engine: Engine,
    options: Options,
    inner: MemoryInner,
}

impl MemoryIndex {
    /// Builds an index over `data` with the chosen engine.
    ///
    /// `Engine::ParisPlus` builds with the ParIS in-memory path (see
    /// [`Engine::ParisPlus`] docs).
    ///
    /// # Errors
    /// Configuration errors (series length vs segments etc.).
    pub fn build(
        data: impl Into<Arc<Dataset>>,
        engine: Engine,
        options: &Options,
    ) -> Result<Self, Error> {
        let data = data.into();
        let series_len = data.series_len();
        let inner = match engine {
            Engine::Ads => {
                let (ads, _) =
                    dsidx_ads::build_from_dataset(&data, &options.tree_config(series_len)?);
                MemoryInner::Ads(ads)
            }
            Engine::Paris | Engine::ParisPlus => {
                let (paris, _) =
                    dsidx_paris::build_in_memory(&data, &options.paris_config(series_len)?);
                MemoryInner::Paris(paris)
            }
            Engine::Messi => {
                let (messi, _) = dsidx_messi::build(&data, &options.messi_config(series_len)?);
                MemoryInner::Messi(messi)
            }
        };
        Ok(Self {
            data,
            engine,
            options: options.clone(),
            inner,
        })
    }

    /// The engine this index was built with.
    #[must_use]
    pub fn engine(&self) -> Engine {
        self.engine
    }

    /// The indexed dataset.
    #[must_use]
    pub fn data(&self) -> &Dataset {
        &self.data
    }

    /// Exact 1-NN under Euclidean distance — the k = 1 special case of
    /// [`knn`](Self::knn). `None` for an empty dataset.
    ///
    /// # Errors
    /// Propagates engine failures (none occur for in-memory sources, but
    /// the signature is uniform with [`DiskIndex::nn`]).
    pub fn nn(&self, query: &[f32]) -> Result<Option<Match>, Error> {
        Ok(self.nn_with_stats(query)?.map(|(m, _)| m))
    }

    /// Exact 1-NN plus the unified per-query work counters — the same
    /// [`QueryStats`] type whichever engine answers, so callers compare
    /// engines without per-engine stat plumbing.
    ///
    /// # Errors
    /// Propagates engine failures.
    pub fn nn_with_stats(&self, query: &[f32]) -> Result<Option<(Match, QueryStats)>, Error> {
        let (matches, stats) = self.knn_with_stats(query, 1)?;
        Ok(matches.into_iter().next().map(|m| (m, stats)))
    }

    /// Exact k-NN under Euclidean distance: the `k` nearest series, sorted
    /// ascending by `(distance, position)` — fewer than `k` when the
    /// collection is smaller, empty for an empty dataset. Deterministic
    /// across runs and thread counts (distance ties prefer the lowest
    /// position).
    ///
    /// # Errors
    /// Propagates engine failures.
    ///
    /// # Panics
    /// Panics if `k == 0`.
    pub fn knn(&self, query: &[f32], k: usize) -> Result<Vec<Match>, Error> {
        Ok(self.knn_with_stats(query, k)?.0)
    }

    /// Exact k-NN plus the unified per-query work counters (see
    /// [`nn_with_stats`](Self::nn_with_stats)).
    ///
    /// # Errors
    /// Propagates engine failures.
    ///
    /// # Panics
    /// Panics if `k == 0`.
    pub fn knn_with_stats(
        &self,
        query: &[f32],
        k: usize,
    ) -> Result<(Vec<Match>, QueryStats), Error> {
        let threads = self.options.effective_threads();
        match &self.inner {
            MemoryInner::Ads(ads) => Ok(dsidx_ads::exact_knn(ads, &*self.data, query, k)?),
            MemoryInner::Paris(paris) => Ok(dsidx_paris::exact_knn(
                paris,
                &*self.data,
                query,
                k,
                threads,
            )?),
            MemoryInner::Messi(messi) => {
                let cfg = self.options.messi_config(self.data.series_len())?;
                Ok(dsidx_messi::exact_knn(messi, &self.data, query, k, &cfg))
            }
        }
    }

    /// Exact 1-NN under banded DTW — answered from the *same* index (§V of
    /// the paper). Supported by the MESSI engine; other engines fall back
    /// to the parallel UCR-DTW scan (still exact, just index-free).
    ///
    /// # Errors
    /// Configuration errors.
    pub fn nn_dtw(&self, query: &[f32], band: usize) -> Result<Option<Match>, Error> {
        Ok(self.nn_dtw_with_stats(query, band)?.map(|(m, _)| m))
    }

    /// Exact 1-NN under banded DTW plus the unified work counters for the
    /// pruning cascade (LB_Keogh prunes, early-abandoned DTWs) — the same
    /// [`QueryStats`] the ED queries report.
    ///
    /// # Errors
    /// Configuration errors.
    pub fn nn_dtw_with_stats(
        &self,
        query: &[f32],
        band: usize,
    ) -> Result<Option<(Match, QueryStats)>, Error> {
        match &self.inner {
            MemoryInner::Messi(messi) => {
                let cfg = self.options.messi_config(self.data.series_len())?;
                Ok(dsidx_messi::exact_nn_dtw(
                    messi, &self.data, query, band, &cfg,
                ))
            }
            _ => Ok(dsidx_ucr::scan_dtw_parallel_with_stats(
                &self.data,
                query,
                band,
                self.options.effective_threads(),
            )),
        }
    }

    /// Structural statistics of the underlying tree.
    #[must_use]
    pub fn stats(&self) -> IndexStats {
        match &self.inner {
            MemoryInner::Ads(ads) => index_stats(&ads.index),
            MemoryInner::Paris(paris) => index_stats(&paris.index),
            MemoryInner::Messi(messi) => index_stats(&messi.index),
        }
    }
}

enum DiskInner {
    Ads(dsidx_ads::AdsIndex),
    Paris(dsidx_paris::ParisIndex),
}

/// An index over an on-disk dataset file; raw values are fetched (and
/// charged to the device) at query time.
pub struct DiskIndex {
    file: DatasetFile,
    engine: Engine,
    options: Options,
    inner: DiskInner,
    build_report: Option<dsidx_paris::BuildReport>,
    #[allow(dead_code)] // held so the leaf store file outlives the index
    store_path: Option<PathBuf>,
}

impl DiskIndex {
    /// Builds an index over the dataset file at `dataset_path`, modeling
    /// the given device profile. `workdir` receives the leaf store.
    ///
    /// `Engine::Messi` is in-memory only and is rejected here.
    ///
    /// # Errors
    /// I/O and configuration failures.
    pub fn build(
        dataset_path: &Path,
        workdir: &Path,
        engine: Engine,
        options: &Options,
        profile: DeviceProfile,
    ) -> Result<Self, Error> {
        let device = Arc::new(Device::new(profile));
        let file = DatasetFile::open(dataset_path, device)?;
        let series_len = file.series_len();
        let (inner, build_report, store_path) = match engine {
            Engine::Ads => {
                let (ads, _) = dsidx_ads::build_from_file(
                    &file,
                    &options.tree_config(series_len)?,
                    options.block_series,
                )?;
                (DiskInner::Ads(ads), None, None)
            }
            Engine::Paris | Engine::ParisPlus => {
                let mode = if engine == Engine::Paris {
                    dsidx_paris::Overlap::Paris
                } else {
                    dsidx_paris::Overlap::ParisPlus
                };
                std::fs::create_dir_all(workdir).map_err(dsidx_storage::StorageError::from)?;
                let store_path = workdir.join(format!("dsidx-leaves-{}.store", std::process::id()));
                let (paris, report) = dsidx_paris::build_on_disk(
                    &file,
                    &store_path,
                    &options.paris_config(series_len)?,
                    mode,
                )?;
                (DiskInner::Paris(paris), Some(report), Some(store_path))
            }
            Engine::Messi => {
                return Err(Error::Unsupported("MESSI is an in-memory index"));
            }
        };
        Ok(Self {
            file,
            engine,
            options: options.clone(),
            inner,
            build_report,
            store_path,
        })
    }

    /// The engine this index was built with.
    #[must_use]
    pub fn engine(&self) -> Engine {
        self.engine
    }

    /// The dataset file the index answers from.
    #[must_use]
    pub fn file(&self) -> &DatasetFile {
        &self.file
    }

    /// Build time decomposition (ParIS/ParIS+ only).
    #[must_use]
    pub fn build_report(&self) -> Option<&dsidx_paris::BuildReport> {
        self.build_report.as_ref()
    }

    /// Exact 1-NN under Euclidean distance — the k = 1 special case of
    /// [`knn`](Self::knn); raw reads go to the modeled device. `None` for
    /// an empty dataset.
    ///
    /// # Errors
    /// Propagates I/O failures.
    pub fn nn(&self, query: &[f32]) -> Result<Option<Match>, Error> {
        Ok(self.nn_with_stats(query)?.map(|(m, _)| m))
    }

    /// Exact 1-NN plus the unified per-query work counters (see
    /// [`MemoryIndex::nn_with_stats`]).
    ///
    /// # Errors
    /// Propagates I/O failures.
    pub fn nn_with_stats(&self, query: &[f32]) -> Result<Option<(Match, QueryStats)>, Error> {
        let (matches, stats) = self.knn_with_stats(query, 1)?;
        Ok(matches.into_iter().next().map(|m| (m, stats)))
    }

    /// Exact k-NN under Euclidean distance; raw reads for candidate
    /// verification go to the modeled device. Same contract as
    /// [`MemoryIndex::knn`].
    ///
    /// # Errors
    /// Propagates I/O failures.
    ///
    /// # Panics
    /// Panics if `k == 0`.
    pub fn knn(&self, query: &[f32], k: usize) -> Result<Vec<Match>, Error> {
        Ok(self.knn_with_stats(query, k)?.0)
    }

    /// Exact k-NN plus the unified per-query work counters (see
    /// [`MemoryIndex::knn_with_stats`]).
    ///
    /// # Errors
    /// Propagates I/O failures.
    ///
    /// # Panics
    /// Panics if `k == 0`.
    pub fn knn_with_stats(
        &self,
        query: &[f32],
        k: usize,
    ) -> Result<(Vec<Match>, QueryStats), Error> {
        match &self.inner {
            DiskInner::Ads(ads) => Ok(dsidx_ads::exact_knn(ads, &self.file, query, k)?),
            DiskInner::Paris(paris) => Ok(dsidx_paris::exact_knn(
                paris,
                &self.file,
                query,
                k,
                self.options.effective_threads(),
            )?),
        }
    }

    /// Structural statistics of the underlying tree.
    #[must_use]
    pub fn stats(&self) -> IndexStats {
        match &self.inner {
            DiskInner::Ads(ads) => index_stats(&ads.index),
            DiskInner::Paris(paris) => index_stats(&paris.index),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dsidx_series::gen::DatasetKind;

    #[test]
    fn engine_parsing_and_names() {
        assert_eq!("messi".parse::<Engine>().unwrap(), Engine::Messi);
        assert_eq!("ParIS+".parse::<Engine>().unwrap(), Engine::ParisPlus);
        assert_eq!("ads+".parse::<Engine>().unwrap(), Engine::Ads);
        assert!("foo".parse::<Engine>().is_err());
        assert_eq!(Engine::Messi.name(), "MESSI");
    }

    #[test]
    fn all_memory_engines_agree() {
        let data = DatasetKind::Synthetic.generate(400, 64, 77);
        let opts = Options::default().with_threads(4).with_leaf_capacity(16);
        let queries = DatasetKind::Synthetic.queries(5, 64, 77);
        let indexes: Vec<MemoryIndex> = Engine::ALL
            .iter()
            .map(|&e| MemoryIndex::build(data.clone(), e, &opts).unwrap())
            .collect();
        for q in queries.iter() {
            let want = dsidx_ucr::brute_force(&data, q).unwrap();
            for idx in &indexes {
                let got = idx.nn(q).unwrap().unwrap();
                assert_eq!(got.pos, want.pos, "{}", idx.engine().name());
            }
        }
    }

    #[test]
    fn knn_agrees_with_brute_force_on_all_memory_engines() {
        let data = DatasetKind::Synthetic.generate(350, 64, 91);
        let opts = Options::default().with_threads(4).with_leaf_capacity(16);
        let queries = DatasetKind::Synthetic.queries(3, 64, 91);
        for engine in Engine::ALL {
            let idx = MemoryIndex::build(data.clone(), engine, &opts).unwrap();
            for q in queries.iter() {
                for k in [1usize, 7, 50] {
                    let want = dsidx_ucr::brute_force_knn(&data, q, k);
                    let got = idx.knn(q, k).unwrap();
                    assert_eq!(
                        got.iter().map(|m| m.pos).collect::<Vec<_>>(),
                        want.iter().map(|m| m.pos).collect::<Vec<_>>(),
                        "{} k={k}",
                        engine.name()
                    );
                }
                // nn is the k = 1 special case.
                let nn = idx.nn(q).unwrap().unwrap();
                assert_eq!(idx.knn(q, 1).unwrap()[0], nn, "{}", engine.name());
            }
        }
    }

    #[test]
    fn dtw_stats_are_reported_for_all_engines() {
        let data = DatasetKind::Sald.generate(200, 64, 15);
        let opts = Options::default().with_threads(2).with_leaf_capacity(16);
        let q = DatasetKind::Sald.queries(1, 64, 15);
        for engine in [Engine::Messi, Engine::Paris] {
            let idx = MemoryIndex::build(data.clone(), engine, &opts).unwrap();
            let (m, stats) = idx
                .nn_dtw_with_stats(q.get(0), 4)
                .unwrap()
                .expect("non-empty");
            assert_eq!(m, idx.nn_dtw(q.get(0), 4).unwrap().unwrap());
            // Both the index path and the scan fallback report the DTW
            // cascade through the same counters.
            assert!(stats.lb_keogh_computed > 0, "{}", engine.name());
            assert!(stats.real_computed > 0, "{}", engine.name());
        }
    }

    #[test]
    fn messi_is_rejected_on_disk() {
        let dir = std::env::temp_dir().join(format!("dsidx-core-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("m.dsidx");
        let data = DatasetKind::Synthetic.generate(10, 64, 1);
        dsidx_storage::write_dataset(&path, &data, Arc::new(Device::unthrottled())).unwrap();
        let e = DiskIndex::build(
            &path,
            &dir,
            Engine::Messi,
            &Options::default(),
            DeviceProfile::UNTHROTTLED,
        );
        assert!(matches!(e, Err(Error::Unsupported(_))));
    }

    #[test]
    fn unified_query_stats_across_engines() {
        let data = DatasetKind::Synthetic.generate(300, 64, 21);
        let opts = Options::default().with_threads(2).with_leaf_capacity(16);
        let q = DatasetKind::Synthetic.queries(1, 64, 21);
        for engine in Engine::ALL {
            let idx = MemoryIndex::build(data.clone(), engine, &opts).unwrap();
            let (_, stats): (Match, QueryStats) =
                idx.nn_with_stats(q.get(0)).unwrap().expect("non-empty");
            // Every engine pays real distances (at least the seeding pass)
            // and reports lower-bound work through the same accessor.
            assert!(stats.real_computed > 0, "{}", engine.name());
            assert!(stats.lb_total() > 0, "{}", engine.name());
        }
    }

    #[test]
    fn stats_are_available() {
        let data = DatasetKind::Sald.generate(200, 64, 5);
        let opts = Options::default().with_threads(2).with_leaf_capacity(10);
        let idx = MemoryIndex::build(data, Engine::Messi, &opts).unwrap();
        let st = idx.stats();
        assert_eq!(st.entry_count, 200);
        assert!(st.leaf_count > 0);
    }
}
