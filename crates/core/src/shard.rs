//! Sharded scatter-gather search: one logical index, N physical shards.
//!
//! A [`ShardedIndex`] partitions a dataset into `N` deterministic
//! contiguous slices (see [`partition`]), builds one ordinary engine index
//! per slice ([`MemoryIndex`] or [`DiskIndex`]), and answers every
//! [`QuerySpec`] cell by scattering the batch to all shards and gathering
//! one global answer — the classic first step from "one index on one
//! machine" toward distributed data-series indexing.
//!
//! Two properties make the gather exact and fast:
//!
//! * **Global positions.** Each shard's kernels record candidate
//!   positions rebased by the shard's first global position (an
//!   [`OffsetTopK`](dsidx_sync::OffsetTopK) view), so the deterministic
//!   `(distance, lowest global position)` tie-break of a monolithic index
//!   is preserved bit-for-bit.
//! * **Mid-flight BSF sharing.** At exact fidelity all shards feed *one*
//!   [`SharedPruners`] collector per query: a tight match found in shard
//!   0 immediately raises the abandon threshold shards `1..N` prune
//!   against, so the total candidates verified shrinks below what `N`
//!   independent searches would pay. Sharing only ever *tightens*
//!   thresholds, so exact answers stay element-wise bit-identical to a
//!   monolithic index over the concatenated dataset. The
//!   [`with_bsf_sharing`](ShardedIndex::with_bsf_sharing) toggle exists
//!   for A/B measurement (the `shards` bench experiment asserts the
//!   candidate-count win).
//!
//! At approximate fidelity each shard's tree is probed independently (the
//! per-shard trees are not the monolith's tree, so there is no shared
//! threshold to maintain) and the coordinator keeps the `k` best
//! `(distance, global position)` pairs — still deterministic, and still
//! subject to the approximate contract (distances never beat exact ones
//! at the same rank).
//!
//! Shards search in parallel on plain scoped threads; the engines' pool
//! broadcasts all go through the per-size cached global
//! [`WorkerPool`](dsidx_sync::WorkerPool), so `N` shards share one pool
//! instead of spawning `N * threads` workers.

use crate::answers::Answers;
use crate::engine::{trace_search, DiskIndex, Engine, MemoryIndex};
use crate::error::Error;
use crate::options::Options;
use crate::search::Search;
use crate::spec::{Fidelity, QuerySpec};
use dsidx_query::{BatchStats, QueryStats, ShardView, SharedPruners};
use dsidx_series::{Dataset, Match};
use dsidx_storage::{Device, DeviceProfile, FlakySource, RawSource, StorageError};
use std::ops::Range;
use std::path::Path;
use std::sync::Arc;
use std::time::{Duration, Instant};

/// Shard-labeled search latency histogram (nanoseconds per shard per
/// `search` call).
const SHARD_SEARCH_NANOS: &str = "dsidx_shard_search_nanos";
/// Shard-labeled count of candidates verified (real distances fully
/// computed) — the number the BSF-sharing win shrinks.
const SHARD_VERIFIED_TOTAL: &str = "dsidx_shard_verified_total";

/// Distinguishes the split dataset files of concurrent (or repeated)
/// on-disk sharded builds in one process.
static SHARD_SEQ: std::sync::atomic::AtomicU64 = std::sync::atomic::AtomicU64::new(0);

/// The deterministic contiguous partition rule: `total` series over
/// `shards` slices, slice `i` holding `total / shards` series plus one
/// extra for the first `total % shards` slices, each starting where the
/// previous one ended. Shard `i`'s first global position is
/// `ranges[i].start`.
///
/// # Panics
/// Panics if `shards == 0`.
#[must_use]
pub fn partition(total: usize, shards: usize) -> Vec<Range<usize>> {
    assert!(shards > 0, "at least one shard");
    let (each, extra) = (total / shards, total % shards);
    let mut ranges = Vec::with_capacity(shards);
    let mut start = 0;
    for i in 0..shards {
        let len = each + usize::from(i < extra);
        ranges.push(start..start + len);
        start += len;
    }
    ranges
}

/// Per-shard answer: the shard-local matches plus its merged stats.
type ShardOutput = Result<(Vec<Vec<Match>>, BatchStats), Error>;

enum ShardIndex {
    Memory(Box<MemoryIndex>),
    Disk(Box<DiskIndex>),
}

/// One shard: an ordinary engine index over a contiguous slice, plus the
/// slice's global offset and an optional fault-injecting source override.
struct Shard {
    index: ShardIndex,
    base: u32,
    count: usize,
    flaky: Option<FlakySource>,
}

impl Shard {
    /// Runs the spec on this shard, reading raw series from the shard's
    /// own source (or its fault-injecting override) and feeding the
    /// cross-shard pruners when `view` is set.
    fn run(
        &self,
        queries: &[&[f32]],
        spec: &QuerySpec,
        view: Option<ShardView<'_>>,
    ) -> ShardOutput {
        match (&self.index, &self.flaky) {
            (ShardIndex::Memory(m), None) => m.run_spec_sharded(m.data(), queries, spec, view),
            (ShardIndex::Memory(m), Some(f)) => m.run_spec_sharded(f, queries, spec, view),
            (ShardIndex::Disk(d), None) => d.run_spec_sharded(d.file(), queries, spec, view),
            (ShardIndex::Disk(d), Some(f)) => d.run_spec_sharded(f, queries, spec, view),
        }
    }

    /// Materializes the shard's raw source as an in-memory dataset (used
    /// to wrap it in a [`FlakySource`]).
    fn materialize(&self) -> Result<Dataset, Error> {
        match &self.index {
            ShardIndex::Memory(m) => Ok(m.data().clone()),
            ShardIndex::Disk(d) => {
                let file = d.file();
                let series_len = file.series_len();
                let mut flat = Vec::with_capacity(file.count() * series_len);
                let mut buf = vec![0.0f32; series_len];
                for pos in 0..file.count() {
                    file.read_into(pos, &mut buf)?;
                    flat.extend_from_slice(&buf);
                }
                Ok(Dataset::from_flat(flat, series_len)?)
            }
        }
    }
}

/// One logical index over `N` engine shards, searched scatter-gather with
/// mid-flight BSF sharing (see the [module docs](self)).
///
/// Implements [`Search`], so every `QuerySpec` cell — engine × measure ×
/// fidelity × single/batch — drops in unchanged:
///
/// ```
/// use dsidx::prelude::*;
/// use dsidx::ShardedIndex;
///
/// let data = DatasetKind::Synthetic.generate(1_000, 64, 9);
/// let queries = DatasetKind::Synthetic.queries(2, 64, 9);
/// let sharded =
///     ShardedIndex::build_in_memory(&data, 4, Engine::Messi, &Options::default()).unwrap();
/// let monolith = MemoryIndex::build(data, Engine::Messi, &Options::default()).unwrap();
///
/// let batch: Vec<&[f32]> = queries.iter().collect();
/// let spec = QuerySpec::knn(5);
/// // Exact answers are element-wise bit-identical to the monolith.
/// assert_eq!(
///     sharded.search(&batch, &spec).unwrap().matches(),
///     monolith.search(&batch, &spec).unwrap().matches(),
/// );
/// ```
pub struct ShardedIndex {
    shards: Vec<Shard>,
    engine: Engine,
    series_len: usize,
    total: usize,
    share_bsf: bool,
}

impl ShardedIndex {
    /// Builds `shards` in-memory engine indexes, one per [`partition`]
    /// slice of `data`.
    ///
    /// # Errors
    /// Configuration errors (series length vs segments etc.).
    ///
    /// # Panics
    /// Panics if `shards == 0`.
    pub fn build_in_memory(
        data: &Dataset,
        shards: usize,
        engine: Engine,
        options: &Options,
    ) -> Result<Self, Error> {
        let series_len = data.series_len();
        let mut built = Vec::with_capacity(shards);
        for range in partition(data.len(), shards) {
            let mut flat = Vec::with_capacity(range.len() * series_len);
            for pos in range.clone() {
                flat.extend_from_slice(data.get(pos));
            }
            let part = Dataset::from_flat(flat, series_len)?;
            built.push(Shard {
                index: ShardIndex::Memory(Box::new(MemoryIndex::build(part, engine, options)?)),
                base: u32::try_from(range.start).expect("dataset positions fit in u32"),
                count: range.len(),
                flaky: None,
            });
        }
        Ok(Self {
            shards: built,
            engine,
            series_len,
            total: data.len(),
            share_bsf: true,
        })
    }

    /// Splits the dataset file at `dataset_path` into `shards` contiguous
    /// shard files inside `workdir` (the split itself is unthrottled
    /// preparation) and builds one on-disk engine index per shard, each
    /// charging its build and query reads to the modeled `profile`.
    ///
    /// # Errors
    /// I/O and configuration failures.
    ///
    /// # Panics
    /// Panics if `shards == 0`.
    pub fn build_on_disk(
        dataset_path: &Path,
        workdir: &Path,
        shards: usize,
        engine: Engine,
        options: &Options,
        profile: DeviceProfile,
    ) -> Result<Self, Error> {
        let device = Arc::new(Device::unthrottled());
        let file = dsidx_storage::DatasetFile::open(dataset_path, Arc::clone(&device))?;
        let series_len = file.series_len();
        let total = file.count();
        std::fs::create_dir_all(workdir).map_err(StorageError::from)?;
        // ORDERING: relaxed — the counter only mints unique workdir names;
        // nothing is published through it.
        let seq = SHARD_SEQ.fetch_add(1, std::sync::atomic::Ordering::Relaxed);
        let mut built = Vec::with_capacity(shards);
        for (s, range) in partition(total, shards).into_iter().enumerate() {
            let mut flat = Vec::with_capacity(range.len() * series_len);
            let mut buf = vec![0.0f32; series_len];
            for pos in range.clone() {
                file.read_into(pos, &mut buf)?;
                flat.extend_from_slice(&buf);
            }
            let part = Dataset::from_flat(flat, series_len)?;
            let shard_path = workdir.join(format!(
                "dsidx-shard-{}-{seq}-{s}.dsidx",
                std::process::id()
            ));
            dsidx_storage::write_dataset(&shard_path, &part, Arc::clone(&device))?;
            built.push(Shard {
                index: ShardIndex::Disk(Box::new(DiskIndex::build(
                    &shard_path,
                    workdir,
                    engine,
                    options,
                    profile,
                )?)),
                base: u32::try_from(range.start).expect("dataset positions fit in u32"),
                count: range.len(),
                flaky: None,
            });
        }
        Ok(Self {
            shards: built,
            engine,
            series_len,
            total,
            share_bsf: true,
        })
    }

    /// Saves the sharded index as one snapshot artifact per shard inside
    /// `dir` (`shard-<i>.snap`), described by a plain-text `MANIFEST`
    /// file. [`open_in_memory`](Self::open_in_memory) and
    /// [`open_on_disk`](Self::open_on_disk) reopen the whole thing from
    /// the manifest. Returns the total bytes written across all
    /// artifacts.
    ///
    /// The manifest records each shard's residence, slice (`base`,
    /// `count`), snapshot file name, and — for on-disk shards — the
    /// absolute path of its shard dataset file, so a disk reopen needs
    /// only the directory.
    ///
    /// # Errors
    /// I/O failures creating `dir` or writing any artifact.
    pub fn save(&self, dir: &Path) -> Result<u64, Error> {
        std::fs::create_dir_all(dir).map_err(StorageError::from)?;
        let mut total_bytes = 0u64;
        let mut manifest = String::new();
        manifest.push_str("dsidx-snapshot-manifest v1\n");
        manifest.push_str(&format!("engine {}\n", self.engine.name()));
        manifest.push_str(&format!("series_len {}\n", self.series_len));
        manifest.push_str(&format!("total {}\n", self.total));
        manifest.push_str(&format!("shards {}\n", self.shards.len()));
        for (s, shard) in self.shards.iter().enumerate() {
            let file = format!("shard-{s}.snap");
            let (kind, dataset) = match &shard.index {
                ShardIndex::Memory(m) => {
                    total_bytes += m.save(&dir.join(&file))?;
                    ("memory", "-".to_string())
                }
                ShardIndex::Disk(d) => {
                    total_bytes += d.save(&dir.join(&file))?;
                    ("disk", d.file().path().display().to_string())
                }
            };
            manifest.push_str(&format!(
                "shard {s} {kind} {} {} {file} {dataset}\n",
                shard.base, shard.count
            ));
        }
        std::fs::write(dir.join("MANIFEST"), &manifest).map_err(StorageError::from)?;
        total_bytes += manifest.len() as u64;
        Ok(total_bytes)
    }

    /// Reopens a saved sharded index over `data` — the same concatenated
    /// dataset it was built from — with every shard answering in memory.
    /// Works for snapshots saved from either residence (the per-shard
    /// trees are identical); the manifest's slices are re-cut from `data`
    /// and each must match the recorded `(base, count)`.
    ///
    /// # Errors
    /// [`Error::Storage`] for a missing/malformed manifest, a manifest
    /// that does not match `data`, or any per-shard snapshot failure.
    pub fn open_in_memory(dir: &Path, data: &Dataset, options: &Options) -> Result<Self, Error> {
        let m = Manifest::read(dir)?;
        if m.series_len != data.series_len() || m.total != data.len() {
            return Err(manifest_corrupt(format!(
                "manifest describes {} series of length {}, dataset has {} of length {} — is \
                 this the right dataset?",
                m.total,
                m.series_len,
                data.len(),
                data.series_len()
            )));
        }
        let mut built = Vec::with_capacity(m.shards.len());
        for (entry, range) in m.shards.iter().zip(partition(m.total, m.shards.len())) {
            entry.check_slice(&range)?;
            let mut flat = Vec::with_capacity(range.len() * m.series_len);
            for pos in range.clone() {
                flat.extend_from_slice(data.get(pos));
            }
            let part = Dataset::from_flat(flat, m.series_len)?;
            let index =
                MemoryIndex::open(&dir.join(&entry.file), part, options).map_err(|e| match e {
                    Error::Storage(err) => Error::Storage(err.for_shard(entry.index)),
                    other => other,
                })?;
            if index.engine() != m.engine {
                return Err(manifest_corrupt(format!(
                    "shard {} snapshot was saved with engine {}, manifest says {}",
                    entry.index,
                    index.engine().name(),
                    m.engine.name()
                )));
            }
            built.push(Shard {
                index: ShardIndex::Memory(Box::new(index)),
                base: u32::try_from(range.start).expect("dataset positions fit in u32"),
                count: range.len(),
                flaky: None,
            });
        }
        Ok(Self {
            shards: built,
            engine: m.engine,
            series_len: m.series_len,
            total: m.total,
            share_bsf: true,
        })
    }

    /// Reopens a saved on-disk sharded index from `dir` alone: each
    /// shard's snapshot is re-paired with the shard dataset file the
    /// manifest recorded, on a fresh device with the given profile.
    ///
    /// # Errors
    /// [`Error::Storage`] for a missing/malformed manifest, manifests
    /// whose shards were not saved from disk, a moved/deleted shard
    /// dataset file, or any per-shard snapshot failure.
    pub fn open_on_disk(
        dir: &Path,
        options: &Options,
        profile: DeviceProfile,
    ) -> Result<Self, Error> {
        let m = Manifest::read(dir)?;
        let mut built = Vec::with_capacity(m.shards.len());
        for (entry, range) in m.shards.iter().zip(partition(m.total, m.shards.len())) {
            entry.check_slice(&range)?;
            let (true, Some(dataset)) = (entry.on_disk, &entry.dataset) else {
                return Err(manifest_corrupt(format!(
                    "shard {} was saved from memory; open_on_disk needs shards saved from disk \
                     (use open_in_memory)",
                    entry.index
                )));
            };
            let index =
                DiskIndex::open(&dir.join(&entry.file), Path::new(dataset), options, profile)
                    .map_err(|e| match e {
                        Error::Storage(err) => Error::Storage(err.for_shard(entry.index)),
                        other => other,
                    })?;
            if index.engine() != m.engine {
                return Err(manifest_corrupt(format!(
                    "shard {} snapshot was saved with engine {}, manifest says {}",
                    entry.index,
                    index.engine().name(),
                    m.engine.name()
                )));
            }
            built.push(Shard {
                index: ShardIndex::Disk(Box::new(index)),
                base: u32::try_from(range.start).expect("dataset positions fit in u32"),
                count: range.len(),
                flaky: None,
            });
        }
        Ok(Self {
            shards: built,
            engine: m.engine,
            series_len: m.series_len,
            total: m.total,
            share_bsf: true,
        })
    }

    /// The engine every shard was built with.
    #[must_use]
    pub fn engine(&self) -> Engine {
        self.engine
    }

    /// Number of shards.
    #[must_use]
    pub fn shard_count(&self) -> usize {
        self.shards.len()
    }

    /// Total series indexed across all shards.
    #[must_use]
    pub fn len(&self) -> usize {
        self.total
    }

    /// `true` for an index over zero series.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.total == 0
    }

    /// Whether exact searches share one BSF across shards (on by
    /// default).
    #[must_use]
    pub fn bsf_sharing(&self) -> bool {
        self.share_bsf
    }

    /// Enables or disables cross-shard BSF sharing (builder style).
    ///
    /// With sharing off, exact searches run each shard fully
    /// independently and merge the per-shard top-k lists afterwards —
    /// same answers, strictly more candidates verified at `shards >= 2`.
    /// Exists for A/B measurement; leave it on otherwise.
    #[must_use]
    pub fn with_bsf_sharing(mut self, share: bool) -> Self {
        self.share_bsf = share;
        self
    }

    /// Test support: wraps shard `shard`'s raw reads in a
    /// [`FlakySource`] allowing `reads_before_failure` successful reads
    /// before every read fails — the shape of one shard's device dying
    /// mid-query. Errors surface as `during <phase> (shard <s>, ...)`.
    ///
    /// # Errors
    /// I/O failures while materializing an on-disk shard.
    ///
    /// # Panics
    /// Panics if `shard` is out of range.
    pub fn fault_inject_shard(
        &mut self,
        shard: usize,
        reads_before_failure: u64,
    ) -> Result<(), Error> {
        let data = self.shards[shard].materialize()?;
        self.shards[shard].flaky = Some(FlakySource::new(data, reads_before_failure));
        Ok(())
    }

    /// The scatter-gather coordinator behind [`Search::search`].
    fn run_spec(&self, queries: &[&[f32]], spec: &QuerySpec) -> ShardOutput {
        spec.validate(self.series_len, queries)?;
        let sharing = self.share_bsf && matches!(spec.fidelity_kind(), Fidelity::Exact);
        let pruners = sharing.then(|| SharedPruners::new(queries.len(), spec.k()));

        // Scatter: one coordinator thread per shard. These must be plain
        // threads, never pool tasks — the engines broadcast on the shared
        // global pool, and broadcasting from inside a pool task
        // self-deadlocks. Broadcasts from different shards serialize on
        // the pool's run lock; the serial parts overlap.
        let results: Vec<(ShardOutput, Duration)> = std::thread::scope(|scope| {
            let handles: Vec<_> = self
                .shards
                .iter()
                .enumerate()
                .map(|(s, shard)| {
                    let pruners = pruners.as_ref();
                    scope.spawn(move || {
                        let start = Instant::now();
                        let view = pruners.map(|p| p.view(shard.base));
                        let out = shard.run(queries, spec, view).map_err(|e| match e {
                            Error::Storage(err) => Error::Storage(err.for_shard(s as u64)),
                            other => other,
                        });
                        (out, start.elapsed())
                    })
                })
                .collect();
            handles
                .into_iter()
                .map(|h| h.join().expect("shard search thread panicked"))
                .collect()
        });

        // Gather: propagate the first failure (in shard order, for a
        // deterministic report), merge the stats, record per-shard obs.
        let mut parts = Vec::with_capacity(results.len());
        for (s, (result, elapsed)) in results.into_iter().enumerate() {
            let (matches, stats) = result?;
            record_shard_obs(s, elapsed, &stats);
            parts.push((matches, stats));
        }

        let matches = match &pruners {
            // BSF sharing: the collectors already hold the global answer
            // (global positions, deduped, `(distance, position)`-ordered).
            Some(p) => p.matches(),
            // Independent shards: rebase local positions and keep the k
            // smallest `(distance, global position)` pairs per query.
            None => {
                let mut merged: Vec<Vec<Match>> = vec![Vec::new(); queries.len()];
                for (shard, (shard_matches, _)) in self.shards.iter().zip(&parts) {
                    for (qi, ms) in shard_matches.iter().enumerate() {
                        merged[qi]
                            .extend(ms.iter().map(|m| Match::new(shard.base + m.pos, m.dist_sq)));
                    }
                }
                for ms in &mut merged {
                    ms.sort_unstable_by(|a, b| {
                        a.dist_sq
                            .partial_cmp(&b.dist_sq)
                            .expect("finite distances")
                            .then(a.pos.cmp(&b.pos))
                    });
                    ms.truncate(spec.k());
                }
                merged
            }
        };

        if pruners.is_some() && dsidx_obs::trace::enabled() {
            trace_bsf_wins(&self.shards, &matches);
        }

        let mut stats = BatchStats {
            per_query: vec![QueryStats::default(); queries.len()],
            ..BatchStats::default()
        };
        for (_, p) in &parts {
            stats.broadcasts += p.broadcasts;
            stats.series_fetched += p.series_fetched;
            stats.series_requests += p.series_requests;
            stats.shared = stats.shared.merged(&p.shared);
            for (m, q) in stats.per_query.iter_mut().zip(&p.per_query) {
                *m = m.merged(q);
            }
        }
        Ok((matches, stats))
    }
}

fn manifest_corrupt(msg: String) -> Error {
    Error::Storage(StorageError::Corrupt(msg))
}

/// One `shard ...` line of a sharded-snapshot `MANIFEST`.
struct ManifestShard {
    index: u64,
    on_disk: bool,
    base: u32,
    count: usize,
    file: String,
    /// Absolute path of the shard's dataset file (`None` when the shard
    /// was saved from memory — the manifest records `-`).
    dataset: Option<String>,
}

impl ManifestShard {
    /// The recorded slice must be the one [`partition`] re-derives —
    /// otherwise global positions would silently shift.
    fn check_slice(&self, range: &Range<usize>) -> Result<(), Error> {
        if self.base as usize != range.start || self.count != range.len() {
            return Err(manifest_corrupt(format!(
                "shard {} records slice ({}, {}) but the partition rule gives ({}, {}) — the \
                 manifest was edited or truncated",
                self.index,
                self.base,
                self.count,
                range.start,
                range.len()
            )));
        }
        Ok(())
    }
}

/// The parsed `MANIFEST` of a sharded snapshot directory.
struct Manifest {
    engine: Engine,
    series_len: usize,
    total: usize,
    shards: Vec<ManifestShard>,
}

impl Manifest {
    fn read(dir: &Path) -> Result<Self, Error> {
        let path = dir.join("MANIFEST");
        let text = std::fs::read_to_string(&path).map_err(StorageError::from)?;
        let mut lines = text.lines();
        if lines.next() != Some("dsidx-snapshot-manifest v1") {
            return Err(manifest_corrupt(format!(
                "{} is not a dsidx sharded-snapshot manifest (bad first line)",
                path.display()
            )));
        }
        let mut engine = None;
        let mut series_len = None;
        let mut total = None;
        let mut declared = None;
        let mut shards: Vec<ManifestShard> = Vec::new();
        for line in lines {
            if line.is_empty() {
                continue;
            }
            let bad = |what: &str| {
                manifest_corrupt(format!("manifest line `{line}` has a malformed {what}"))
            };
            match line.split_once(' ') {
                Some(("engine", name)) => {
                    engine = Some(name.parse::<Engine>().map_err(|_| bad("engine name"))?);
                }
                Some(("series_len", v)) => {
                    series_len = Some(v.parse::<usize>().map_err(|_| bad("series length"))?);
                }
                Some(("total", v)) => {
                    total = Some(v.parse::<usize>().map_err(|_| bad("total"))?);
                }
                Some(("shards", v)) => {
                    declared = Some(v.parse::<usize>().map_err(|_| bad("shard count"))?);
                }
                Some(("shard", rest)) => {
                    // `<i> <kind> <base> <count> <file> <dataset>` — the
                    // dataset path comes last and may itself contain
                    // spaces, hence the bounded split.
                    let fields: Vec<&str> = rest.splitn(6, ' ').collect();
                    let [i, kind, base, count, file, dataset] = fields[..] else {
                        return Err(bad("shard record"));
                    };
                    let on_disk = match kind {
                        "disk" => true,
                        "memory" => false,
                        _ => return Err(bad("residence")),
                    };
                    let index = i.parse::<u64>().map_err(|_| bad("shard number"))?;
                    if index != shards.len() as u64 {
                        return Err(manifest_corrupt(format!(
                            "manifest shard records are out of order at shard {index}"
                        )));
                    }
                    shards.push(ManifestShard {
                        index,
                        on_disk,
                        base: base.parse().map_err(|_| bad("base"))?,
                        count: count.parse().map_err(|_| bad("count"))?,
                        file: file.to_string(),
                        dataset: (dataset != "-").then(|| dataset.to_string()),
                    });
                }
                _ => {
                    return Err(manifest_corrupt(format!(
                        "manifest has an unrecognized line `{line}`"
                    )))
                }
            }
        }
        let missing = |what: &str| manifest_corrupt(format!("manifest is missing its {what} line"));
        let engine = engine.ok_or_else(|| missing("engine"))?;
        let series_len = series_len.ok_or_else(|| missing("series_len"))?;
        let total = total.ok_or_else(|| missing("total"))?;
        let declared = declared.ok_or_else(|| missing("shards"))?;
        if declared != shards.len() || shards.is_empty() {
            return Err(manifest_corrupt(format!(
                "manifest declares {declared} shards but records {} (truncated?)",
                shards.len()
            )));
        }
        Ok(Self {
            engine,
            series_len,
            total,
            shards,
        })
    }
}

impl Search for ShardedIndex {
    fn search(&self, queries: &[&[f32]], spec: &QuerySpec) -> Result<Answers, Error> {
        trace_search("sharded", self.engine, queries.len(), spec);
        let (matches, stats) = self.run_spec(queries, spec)?;
        Ok(Answers::new(
            matches,
            spec.stats_requested().then_some(stats),
        ))
    }
}

/// Records one shard's contribution to the labeled registry metrics and
/// the trace stream: search latency under `dsidx_shard_search_nanos`,
/// candidates verified under `dsidx_shard_verified_total`, plus a
/// `shard_search` trace event carrying both.
fn record_shard_obs(shard: usize, elapsed: Duration, stats: &BatchStats) {
    let verified =
        stats.shared.real_computed + stats.per_query.iter().map(|q| q.real_computed).sum::<u64>();
    let nanos = u64::try_from(elapsed.as_nanos()).unwrap_or(u64::MAX);
    if dsidx_obs::enabled() {
        let label = shard.to_string();
        // 1us .. ~4s per shard search.
        let bounds = dsidx_obs::registry::exponential_bounds(1_000, 4, 12);
        dsidx_obs::registry::labeled_histogram(
            SHARD_SEARCH_NANOS,
            "Nanoseconds one shard spent answering its slice of a search",
            "shard",
            &label,
            &bounds,
        )
        .observe(nanos);
        dsidx_obs::registry::labeled_counter(
            SHARD_VERIFIED_TOTAL,
            "Candidates verified (real distances fully computed) per shard",
            "shard",
            &label,
        )
        .add(verified);
    }
    if dsidx_obs::trace::enabled() {
        use dsidx_obs::trace::Value;
        dsidx_obs::trace::emit(
            "shard_search",
            &[
                ("shard", Value::U64(shard as u64)),
                ("nanos", Value::U64(nanos)),
                ("verified", Value::U64(verified)),
            ],
        );
    }
}

/// Emits one `shard_bsf_win` trace event per (query, shard) whose inserts
/// survived into the final top-k — the shards whose candidates improved
/// the shared BSF and held their rank to the end.
fn trace_bsf_wins(shards: &[Shard], matches: &[Vec<Match>]) {
    use dsidx_obs::trace::Value;
    for (qi, ms) in matches.iter().enumerate() {
        for (s, shard) in shards.iter().enumerate() {
            let hi = shard.base + u32::try_from(shard.count).expect("shard sizes fit in u32");
            let entries = ms
                .iter()
                .filter(|m| m.pos >= shard.base && m.pos < hi)
                .count() as u64;
            if entries > 0 {
                dsidx_obs::trace::emit(
                    "shard_bsf_win",
                    &[
                        ("query", Value::U64(qi as u64)),
                        ("shard", Value::U64(s as u64)),
                        ("entries", Value::U64(entries)),
                    ],
                );
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::spec::Measure;
    use dsidx_series::gen::DatasetKind;

    #[test]
    fn partition_is_contiguous_and_balanced() {
        for total in [0usize, 1, 7, 100, 101, 103] {
            for shards in [1usize, 2, 3, 8] {
                let ranges = partition(total, shards);
                assert_eq!(ranges.len(), shards);
                assert_eq!(ranges[0].start, 0);
                assert_eq!(ranges.last().unwrap().end, total);
                for w in ranges.windows(2) {
                    assert_eq!(w[0].end, w[1].start, "contiguous");
                    assert!(
                        w[0].len() == w[1].len() || w[0].len() == w[1].len() + 1,
                        "larger slices come first"
                    );
                }
            }
        }
    }

    #[test]
    fn sharded_exact_matches_monolith_bit_for_bit() {
        let data = DatasetKind::Synthetic.generate(600, 64, 17);
        let opts = Options::default().with_threads(3).with_leaf_capacity(16);
        let qs = DatasetKind::Synthetic.queries(3, 64, 17);
        let qrefs: Vec<&[f32]> = qs.iter().collect();
        for engine in Engine::ALL {
            let monolith = MemoryIndex::build(data.clone(), engine, &opts).unwrap();
            for shards in [1usize, 3, 4] {
                let sharded = ShardedIndex::build_in_memory(&data, shards, engine, &opts).unwrap();
                assert_eq!(sharded.shard_count(), shards);
                assert_eq!(sharded.len(), 600);
                for spec in [
                    QuerySpec::nn(),
                    QuerySpec::knn(7),
                    QuerySpec::knn(4).measure(Measure::Dtw { band: 4 }),
                ] {
                    let want = monolith.search(&qrefs, &spec).unwrap();
                    let got = sharded.search(&qrefs, &spec).unwrap();
                    assert_eq!(
                        got.matches(),
                        want.matches(),
                        "{} shards={shards}",
                        engine.name()
                    );
                }
            }
        }
    }

    #[test]
    fn sharing_disabled_gives_the_same_answers() {
        let data = DatasetKind::Sald.generate(400, 64, 23);
        let opts = Options::default().with_threads(2).with_leaf_capacity(16);
        let qs = DatasetKind::Sald.queries(2, 64, 23);
        let qrefs: Vec<&[f32]> = qs.iter().collect();
        let shared = ShardedIndex::build_in_memory(&data, 3, Engine::Messi, &opts).unwrap();
        let isolated = ShardedIndex::build_in_memory(&data, 3, Engine::Messi, &opts)
            .unwrap()
            .with_bsf_sharing(false);
        assert!(shared.bsf_sharing());
        assert!(!isolated.bsf_sharing());
        let spec = QuerySpec::knn(6).with_stats();
        let a = shared.search(&qrefs, &spec).unwrap();
        let b = isolated.search(&qrefs, &spec).unwrap();
        assert_eq!(a.matches(), b.matches());
    }

    #[test]
    fn sharded_snapshot_round_trips_in_memory() {
        let dir = std::env::temp_dir().join(format!("dsidx-shardsnap-{}", std::process::id()));
        let data = DatasetKind::Synthetic.generate(500, 64, 41);
        let opts = Options::default().with_threads(2).with_leaf_capacity(16);
        let qs = DatasetKind::Synthetic.queries(3, 64, 41);
        let qrefs: Vec<&[f32]> = qs.iter().collect();
        let built = ShardedIndex::build_in_memory(&data, 3, Engine::Messi, &opts).unwrap();
        built.save(&dir).unwrap();
        let opened = ShardedIndex::open_in_memory(&dir, &data, &Options::default()).unwrap();
        assert_eq!(opened.shard_count(), 3);
        assert_eq!(opened.engine(), Engine::Messi);
        assert_eq!(opened.len(), 500);
        for spec in [QuerySpec::nn(), QuerySpec::knn(7)] {
            assert_eq!(
                opened.search(&qrefs, &spec).unwrap().matches(),
                built.search(&qrefs, &spec).unwrap().matches(),
            );
        }
        // The wrong dataset is refused up front, not answered wrongly.
        let other = DatasetKind::Synthetic.generate(499, 64, 41);
        let err = match ShardedIndex::open_in_memory(&dir, &other, &Options::default()) {
            Err(e) => e.to_string(),
            Ok(_) => panic!("wrong dataset accepted"),
        };
        assert!(err.contains("right dataset"), "{err}");
    }

    #[test]
    fn sharded_snapshot_round_trips_on_disk() {
        let dir = std::env::temp_dir().join(format!("dsidx-shardsnap-d-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("full.dsidx");
        let data = DatasetKind::Synthetic.generate(400, 64, 43);
        dsidx_storage::write_dataset(&path, &data, Arc::new(Device::unthrottled())).unwrap();
        let opts = Options::default().with_threads(2).with_leaf_capacity(16);
        let built = ShardedIndex::build_on_disk(
            &path,
            &dir,
            3,
            Engine::ParisPlus,
            &opts,
            DeviceProfile::UNTHROTTLED,
        )
        .unwrap();
        let snapdir = dir.join("snap");
        built.save(&snapdir).unwrap();
        // Disk reopen: the manifest alone locates every shard artifact
        // and dataset file.
        let opened =
            ShardedIndex::open_on_disk(&snapdir, &Options::default(), DeviceProfile::UNTHROTTLED)
                .unwrap();
        assert_eq!(opened.engine(), Engine::ParisPlus);
        let qs = DatasetKind::Synthetic.queries(2, 64, 43);
        let qrefs: Vec<&[f32]> = qs.iter().collect();
        let spec = QuerySpec::knn(5);
        assert_eq!(
            opened.search(&qrefs, &spec).unwrap().matches(),
            built.search(&qrefs, &spec).unwrap().matches(),
        );
        // The same artifacts also open in memory over the full dataset.
        let mem = ShardedIndex::open_in_memory(&snapdir, &data, &Options::default()).unwrap();
        assert_eq!(
            mem.search(&qrefs, &spec).unwrap().matches(),
            built.search(&qrefs, &spec).unwrap().matches(),
        );
        // A tampered manifest is a structured error naming the problem.
        let manifest = snapdir.join("MANIFEST");
        let text = std::fs::read_to_string(&manifest).unwrap();
        std::fs::write(&manifest, text.replace("shard 2 disk", "shard 2 memory")).unwrap();
        let err = match ShardedIndex::open_on_disk(
            &snapdir,
            &Options::default(),
            DeviceProfile::UNTHROTTLED,
        ) {
            Err(e) => e.to_string(),
            Ok(_) => panic!("tampered manifest accepted"),
        };
        assert!(err.contains("shard 2"), "{err}");
    }

    #[test]
    fn fault_injected_shard_reports_shard_and_query_context() {
        let data = DatasetKind::Synthetic.generate(300, 64, 31);
        let opts = Options::default().with_threads(2).with_leaf_capacity(16);
        let qs = DatasetKind::Synthetic.queries(2, 64, 31);
        let qrefs: Vec<&[f32]> = qs.iter().collect();
        let mut sharded = ShardedIndex::build_in_memory(&data, 3, Engine::Messi, &opts).unwrap();
        sharded.fault_inject_shard(1, 0).unwrap();
        // Exact: the error names the phase and the failing shard.
        let err = sharded
            .search(&qrefs, &QuerySpec::knn(3))
            .expect_err("shard 1 cannot read anything");
        let msg = err.to_string();
        assert!(
            msg.contains("during") && msg.contains("(shard 1)"),
            "unexpected message: {msg}"
        );
        // Approximate: the per-query loop adds the query index too.
        let err = sharded
            .search(&qrefs, &QuerySpec::knn(3).fidelity(Fidelity::Approximate))
            .expect_err("shard 1 cannot read anything");
        let msg = err.to_string();
        assert!(
            msg.contains("(shard 1, query 0)"),
            "unexpected message: {msg}"
        );
        // The healthy shards still answer once the faulty one is benched.
        let healthy = ShardedIndex::build_in_memory(&data, 3, Engine::Messi, &opts).unwrap();
        assert!(healthy.search(&qrefs, &QuerySpec::knn(3)).is_ok());
    }
}
