//! Quickstart: generate a collection, build each engine's index, answer
//! exact nearest-neighbor queries.
//!
//! Run with: `cargo run --release --example quickstart`

use dsidx::prelude::*;
use std::time::Instant;

fn main() -> Result<(), Error> {
    // A synthetic collection in the style of the paper's evaluation:
    // random-walk series (here 20K x 256 instead of 100M x 256).
    let n = 20_000;
    let len = 256;
    println!("generating {n} random-walk series of length {len}...");
    let data = DatasetKind::Synthetic.generate(n, len, 42);
    let queries = DatasetKind::Synthetic.queries(5, len, 42);

    let options = Options::default().with_leaf_capacity(100);

    // Build with every engine and compare answers: all four are *exact*,
    // so they must agree.
    for engine in [Engine::Ads, Engine::Paris, Engine::Messi] {
        let t0 = Instant::now();
        let index = MemoryIndex::build(data.clone(), engine, &options)?;
        let build = t0.elapsed();

        let t1 = Instant::now();
        let mut answers = Vec::new();
        for q in queries.iter() {
            answers.push(index.nn(q)?.expect("non-empty dataset"));
        }
        let query = t1.elapsed();

        let stats = index.stats();
        println!(
            "{:<7} build {:>8.1?}  {} queries {:>8.1?}  ({} subtrees, {} leaves, depth {})",
            engine.name(),
            build,
            answers.len(),
            query,
            stats.root_subtrees,
            stats.leaf_count,
            stats.max_depth,
        );
        for (i, m) in answers.iter().enumerate() {
            println!("    query {i}: nearest #{:<6} dist {:.4}", m.pos, m.dist());
        }
    }

    // Exact k-NN through the same indexes: the pruning threshold becomes
    // the k-th best distance, so the answer set is exact for any k. `nn`
    // is just the k = 1 special case.
    let index = MemoryIndex::build(data.clone(), Engine::Messi, &options)?;
    let q = queries.get(0);
    let (top5, stats) = index.knn_with_stats(q, 5)?;
    println!("\n5 nearest series for query 0 (MESSI):");
    for (rank, m) in top5.iter().enumerate() {
        println!("    {}. #{:<6} dist {:.4}", rank + 1, m.pos, m.dist());
    }
    println!(
        "    ({} lower bounds, {} real distances for k=5)",
        stats.lb_total(),
        stats.real_computed
    );
    assert_eq!(top5[0], index.nn(q)?.expect("non-empty"));

    // The MESSI index also answers DTW queries without rebuilding (§V).
    let index = MemoryIndex::build(data, Engine::Messi, &options)?;
    let band = len / 20; // 5% Sakoe-Chiba band
    let q = queries.get(0);
    let ed = index.nn(q)?.expect("non-empty");
    let dtw = index.nn_dtw(q, band)?.expect("non-empty");
    println!("\nsame index, both measures (query 0):");
    println!("    ED : #{:<6} dist {:.4}", ed.pos, ed.dist());
    println!(
        "    DTW: #{:<6} dist {:.4} (band {band})",
        dtw.pos,
        dtw.dist()
    );
    Ok(())
}
