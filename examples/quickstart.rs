//! Quickstart: generate a collection, build each engine's index, answer
//! exact nearest-neighbor queries through the one query plane
//! (`QuerySpec` + `Search::search`).
//!
//! Run with: `cargo run --release --example quickstart`

use dsidx::prelude::*;
use std::time::Instant;

fn main() -> Result<(), Error> {
    // A synthetic collection in the style of the paper's evaluation:
    // random-walk series (here 20K x 256 instead of 100M x 256).
    let n = 20_000;
    let len = 256;
    println!("generating {n} random-walk series of length {len}...");
    let data = DatasetKind::Synthetic.generate(n, len, 42);
    let queries = DatasetKind::Synthetic.queries(5, len, 42);
    let batch: Vec<&[f32]> = queries.iter().collect();

    let options = Options::default().with_leaf_capacity(100);

    // Build with every engine and compare answers: all four are *exact*,
    // so they must agree. One `search` call answers the whole batch.
    for engine in [Engine::Ads, Engine::Paris, Engine::Messi] {
        let t0 = Instant::now();
        let index = MemoryIndex::build(data.clone(), engine, &options)?;
        let build = t0.elapsed();

        let t1 = Instant::now();
        let answers = index.search(&batch, &QuerySpec::nn())?;
        let query = t1.elapsed();

        let stats = index.stats();
        println!(
            "{:<7} build {:>8.1?}  {} queries {:>8.1?}  ({} subtrees, {} leaves, depth {})",
            engine.name(),
            build,
            answers.len(),
            query,
            stats.root_subtrees,
            stats.leaf_count,
            stats.max_depth,
        );
        for (i, _) in batch.iter().enumerate() {
            let m = answers.best(i).expect("non-empty dataset");
            println!("    query {i}: nearest #{:<6} dist {:.4}", m.pos, m.dist());
        }
    }

    // Exact k-NN through the same indexes: the pruning threshold becomes
    // the k-th best distance, so the answer set is exact for any k.
    // `QuerySpec::nn()` is just the k = 1 special case.
    let index = MemoryIndex::build(data.clone(), Engine::Messi, &options)?;
    let q = queries.get(0);
    let answers = index.search(&[q], &QuerySpec::knn(5).with_stats())?;
    let stats = answers.query_stats(0).expect("stats requested");
    println!("\n5 nearest series for query 0 (MESSI):");
    for (rank, m) in answers.single().iter().enumerate() {
        println!("    {}. #{:<6} dist {:.4}", rank + 1, m.pos, m.dist());
    }
    println!(
        "    ({} lower bounds, {} real distances for k=5)",
        stats.lb_total(),
        stats.real_computed
    );
    let best = answers.best(0).copied().expect("non-empty");
    assert_eq!(
        best,
        index
            .search(&[q], &QuerySpec::nn())?
            .into_nn()
            .expect("non-empty")
    );

    // The MESSI index also answers DTW queries without rebuilding (§V):
    // a measure is one builder call, not another method family.
    let band = len / 20; // 5% Sakoe-Chiba band
    let ed = index
        .search(&[q], &QuerySpec::nn())?
        .into_nn()
        .expect("non-empty");
    let dtw = index
        .search(&[q], &QuerySpec::nn().measure(Measure::Dtw { band }))?
        .into_nn()
        .expect("non-empty");
    println!("\nsame index, both measures (query 0):");
    println!("    ED : #{:<6} dist {:.4}", ed.pos, ed.dist());
    println!(
        "    DTW: #{:<6} dist {:.4} (band {band})",
        dtw.pos,
        dtw.dist()
    );

    // Approximate answering: one more builder call trades exactness for a
    // best-leaf visit. Reported distances never beat the exact answer.
    let approx = index
        .search(&[q], &QuerySpec::nn().fidelity(Fidelity::Approximate))?
        .into_nn()
        .expect("non-empty");
    println!("\nexact vs approximate (query 0):");
    println!("    exact : #{:<6} dist {:.4}", ed.pos, ed.dist());
    println!("    approx: #{:<6} dist {:.4}", approx.pos, approx.dist());
    assert!(approx.dist_sq >= ed.dist_sq);
    Ok(())
}
