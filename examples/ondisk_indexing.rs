//! On-disk indexing with modeled devices — all four engines on one
//! storage plane.
//!
//! Writes a dataset file, builds ADS+, ParIS, ParIS+ *and* MESSI indexes
//! over it on a simulated HDD, and prints the build-time decomposition
//! that Fig. 4 of the paper plots — watch ParIS+'s stall (visible CPU +
//! write) shrink to almost nothing. Then answers queries on both HDD and
//! SSD profiles (Fig. 8's contrast), and finishes with the cell the engine
//! matrix used to lack: exact DTW answered straight from the file through
//! MESSI's generic cascade.
//!
//! Run with: `cargo run --release --example ondisk_indexing`

use dsidx::prelude::*;
use std::time::Instant;

fn main() -> Result<(), Error> {
    let n = 30_000;
    let len = 256;
    let dir = std::env::temp_dir().join("dsidx-ondisk-example");
    std::fs::create_dir_all(&dir).map_err(dsidx::storage::StorageError::from)?;
    let dataset_path = dir.join("archive.dsidx");

    println!(
        "writing {n} x {len} random-walk series to {}",
        dataset_path.display()
    );
    let data = DatasetKind::Synthetic.generate(n, len, 2026);
    dsidx::storage::write_dataset(
        &dataset_path,
        &data,
        std::sync::Arc::new(Device::unthrottled()),
    )?;

    let options = Options::default()
        .with_leaf_capacity(100)
        // A small generation size forces several stage-3 rounds, making
        // the ParIS vs ParIS+ overlap visible even at this scale.
        .with_threads(0);

    println!("\n-- index construction on a modeled HDD --");
    println!(
        "{:<8} {:>9} {:>9} {:>9} {:>9}",
        "engine", "total", "read", "cpu", "write"
    );
    for engine in Engine::ALL {
        let t0 = Instant::now();
        let index = DiskIndex::build(&dataset_path, &dir, engine, &options, DeviceProfile::HDD)?;
        let total = t0.elapsed();
        if let Some(report) = index.build_report() {
            println!(
                "{:<8} {:>8.2?} {:>8.2?} {:>8.2?} {:>8.2?}",
                engine.name(),
                report.total,
                report.read,
                report.visible_cpu(),
                report.visible_write()
            );
        } else {
            println!(
                "{:<8} {:>8.2?}      (streaming build: no pipeline breakdown)",
                engine.name(),
                total
            );
        }
    }

    println!("\n-- exact query answering, HDD vs SSD (ParIS+) --");
    let queries = DatasetKind::Synthetic.queries(3, len, 2026);
    let batch: Vec<&[f32]> = queries.iter().collect();
    for profile in [DeviceProfile::HDD, DeviceProfile::SSD] {
        let index = DiskIndex::build(&dataset_path, &dir, Engine::ParisPlus, &options, profile)?;
        index.file().device().reset_stats();
        let t = Instant::now();
        let answers = index.search(&batch, &QuerySpec::nn())?;
        let elapsed = t.elapsed();
        assert!(answers.best(0).is_some(), "non-empty");
        let stats = index.file().device().stats();
        println!(
            "{:<12} {} queries in {:>8.2?}  ({} random reads charged, {:.1} MiB)",
            profile.name,
            answers.len(),
            elapsed,
            stats.seeks,
            stats.bytes_read as f64 / (1024.0 * 1024.0)
        );

        // Approximate fidelity on the same on-disk index: a few probe
        // reads instead of full verification — the interactive mode for
        // slow devices.
        index.file().device().reset_stats();
        let t = Instant::now();
        let approx = index.search(&batch, &QuerySpec::nn().fidelity(Fidelity::Approximate))?;
        let stats = index.file().device().stats();
        println!(
            "{:<12}   approximate: {:>8.2?}  ({} random reads charged); dist {:.4} vs exact {:.4}",
            "",
            t.elapsed(),
            stats.seeks,
            approx.best(0).expect("non-empty").dist(),
            answers.best(0).expect("non-empty").dist(),
        );
    }
    println!("\n(the HDD/SSD gap above is Fig. 8's effect, miniaturized)");

    // The formerly-missing cell: MESSI built over the file, answering
    // exact ED *and* exact DTW with candidate reads charged to the device
    // — the whole batch in one traversal broadcast per measure.
    println!("\n-- MESSI on disk: the closed engine matrix (SSD) --");
    let index = DiskIndex::build(
        &dataset_path,
        &dir,
        Engine::Messi,
        &options,
        DeviceProfile::SSD,
    )?;
    for (label, spec) in [
        ("exact ED", QuerySpec::knn(5).with_stats()),
        (
            "exact DTW",
            QuerySpec::knn(5)
                .measure(Measure::Dtw { band: len / 20 })
                .with_stats(),
        ),
    ] {
        index.file().device().reset_stats();
        let t = Instant::now();
        let answers = index.search(&batch, &spec)?;
        let stats = index.file().device().stats();
        let broadcasts = answers.stats().expect("stats requested").broadcasts;
        assert!(broadcasts <= 1, "one broadcast answers the whole batch");
        println!(
            "{:<10} {} queries in {:>8.2?}  ({broadcasts} broadcast, {} random reads, {:.1} MiB)",
            label,
            answers.len(),
            t.elapsed(),
            stats.seeks,
            stats.bytes_read as f64 / (1024.0 * 1024.0)
        );
    }
    println!("(tree pruning keeps the device mostly idle — the MESSI effect, now on disk)");
    Ok(())
}
