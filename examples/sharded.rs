//! Sharded scatter-gather search: split one collection over N engine
//! shards, search them in parallel with mid-flight BSF sharing, and show
//! that the answers stay bit-identical to the monolithic index while the
//! shared best-so-far shrinks the verification work.
//!
//! Run with: `cargo run --release --example sharded`

use dsidx::prelude::*;
use dsidx::ShardedIndex;
use std::time::Instant;

/// Candidates verified (real distances fully computed) across a batch.
fn verified(stats: &BatchStats) -> u64 {
    stats.shared.real_computed + stats.per_query.iter().map(|q| q.real_computed).sum::<u64>()
}

fn main() -> Result<(), Error> {
    let n = 20_000;
    let len = 128;
    println!("generating {n} random-walk series of length {len}...");
    let data = DatasetKind::Synthetic.generate(n, len, 42);
    let queries = DatasetKind::Synthetic.queries(5, len, 42);
    let batch: Vec<&[f32]> = queries.iter().collect();
    let options = Options::default().with_leaf_capacity(100);
    let spec = QuerySpec::knn(10).with_stats();

    // The monolithic baseline every sharded answer must reproduce.
    let monolith = MemoryIndex::build(data.clone(), Engine::Messi, &options)?;
    let want = monolith.search(&batch, &spec)?;

    println!(
        "\nMESSI over {n} series, exact 10-NN for {} queries:",
        batch.len()
    );
    for shards in [1usize, 2, 4, 8] {
        let t0 = Instant::now();
        let sharded = ShardedIndex::build_in_memory(&data, shards, Engine::Messi, &options)?;
        let build = t0.elapsed();

        // Sharing on (the default): one SharedTopK per query is threaded
        // through every shard's kernels, so a tight match found in one
        // shard raises the abandon threshold the others prune against.
        let t1 = Instant::now();
        let shared = sharded.search(&batch, &spec)?;
        let query = t1.elapsed();
        assert_eq!(want.matches(), shared.matches(), "sharded != monolith");

        // Sharing off: each shard searches independently and the
        // coordinator merges afterwards — same answers, more work.
        let isolated = sharded.with_bsf_sharing(false).search(&batch, &spec)?;
        assert_eq!(want.matches(), isolated.matches(), "isolated != monolith");

        let (on, off) = (
            verified(shared.stats().expect("stats requested")),
            verified(isolated.stats().expect("stats requested")),
        );
        println!(
            "    {shards} shard(s): build {build:>8.1?}  search {query:>8.1?}  \
             verified {on:>5} shared / {off:>5} isolated",
        );
    }

    println!("\nevery sharded answer above is bit-identical to the monolith's.");
    Ok(())
}
