//! Persistent index snapshots: build once, open in milliseconds.
//!
//! Builds an on-disk ParIS+ index and an in-memory MESSI index, saves
//! both as versioned snapshot artifacts, then reopens them and shows the
//! cold-start contrast: `open` does no tree construction — it decodes the
//! node records back into the tree in one pass — so it costs milliseconds
//! where the build costs seconds of modeled I/O and CPU.
//!
//! Run with: `cargo run --release --example snapshot`
//!
//! The save and open halves also run as separate processes — which is how
//! CI exercises them, proving the artifact is self-contained rather than
//! an artifact of in-process state:
//!
//! ```text
//! cargo run --release --example snapshot -- save /tmp/snapdir
//! cargo run --release --example snapshot -- open /tmp/snapdir
//! ```

use dsidx::prelude::*;
use std::path::Path;
use std::time::Instant;

const N: usize = 8_000;
const LEN: usize = 128;
const SEED: u64 = 2026;

fn dataset() -> Dataset {
    DatasetKind::Synthetic.generate(N, LEN, SEED)
}

fn options() -> Options {
    Options::default().with_leaf_capacity(100).with_threads(0)
}

fn save(dir: &Path) -> Result<(), Error> {
    std::fs::create_dir_all(dir).map_err(dsidx::storage::StorageError::from)?;
    let dataset_path = dir.join("archive.dsidx");
    println!("writing {N} x {LEN} series to {}", dataset_path.display());
    let data = dataset();
    dsidx::storage::write_dataset(
        &dataset_path,
        &data,
        std::sync::Arc::new(Device::unthrottled()),
    )?;

    let t0 = Instant::now();
    let disk = DiskIndex::build(
        &dataset_path,
        dir,
        Engine::ParisPlus,
        &options(),
        DeviceProfile::SSD,
    )?;
    println!("ParIS+ on-disk build: {:.2?}", t0.elapsed());
    let bytes = disk.save(&dir.join("parisplus.snap"))?;
    println!("  saved parisplus.snap ({bytes} bytes, leaf store embedded)");

    let t0 = Instant::now();
    let mem = MemoryIndex::build(data, Engine::Messi, &options())?;
    println!("MESSI in-memory build: {:.2?}", t0.elapsed());
    let bytes = mem.save(&dir.join("messi.snap"))?;
    println!("  saved messi.snap ({bytes} bytes)");
    Ok(())
}

fn open(dir: &Path) -> Result<(), Error> {
    let data = dataset();
    let query = DatasetKind::Synthetic.queries(1, LEN, SEED + 1);
    let q = query.get(0);
    let want = dsidx::ucr::brute_force(&data, q).expect("non-empty dataset");

    let t0 = Instant::now();
    let disk = DiskIndex::open(
        &dir.join("parisplus.snap"),
        &dir.join("archive.dsidx"),
        &Options::default(),
        DeviceProfile::SSD,
    )?;
    println!(
        "ParIS+ snapshot open: {:.2?} (no tree construction)",
        t0.elapsed()
    );
    let hit = disk
        .search(&[q], &QuerySpec::nn())?
        .into_nn()
        .expect("non-empty");
    assert_eq!(hit.pos, want.pos, "opened index answers exactly");
    println!("  1-NN: series #{} at distance {:.4}", hit.pos, hit.dist());

    let t0 = Instant::now();
    let mem = MemoryIndex::open(&dir.join("messi.snap"), data, &Options::default())?;
    println!("MESSI snapshot open: {:.2?}", t0.elapsed());
    let hit = mem
        .search(&[q], &QuerySpec::nn())?
        .into_nn()
        .expect("non-empty");
    assert_eq!(hit.pos, want.pos, "opened index answers exactly");
    println!("  1-NN: series #{} at distance {:.4}", hit.pos, hit.dist());
    Ok(())
}

fn main() -> Result<(), Error> {
    let args: Vec<String> = std::env::args().collect();
    match args.get(1).map(String::as_str) {
        Some("save") => {
            let dir = args.get(2).expect("usage: snapshot save <dir>");
            save(Path::new(dir))
        }
        Some("open") => {
            let dir = args.get(2).expect("usage: snapshot open <dir>");
            open(Path::new(dir))
        }
        None => {
            // Both halves in one process.
            let dir = std::env::temp_dir().join("dsidx-snapshot-example");
            save(&dir)?;
            println!();
            open(&dir)
        }
        Some(other) => {
            eprintln!("unknown subcommand `{other}` (expected `save` or `open`)");
            std::process::exit(2);
        }
    }
}
