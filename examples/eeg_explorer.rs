//! Interactive EEG exploration: a session of dependent similarity queries.
//!
//! The paper's motivation for millisecond query answering is *exploratory*
//! search, "where every next query depends on the results of previous
//! queries" (§I). This example simulates such a session over an EEG-like
//! collection (the SALD surrogate): start from a seed epoch, find its
//! nearest neighbor, hop to it, repeat — a walk through the collection
//! that is only interactive if each hop is fast.
//!
//! Run with: `cargo run --release --example eeg_explorer`

use dsidx::prelude::*;
use std::time::Instant;

fn main() -> Result<(), Error> {
    let n = 50_000;
    let len = 128; // SALD uses length-128 series
    println!("collection: {n} EEG-like epochs of {len} samples");
    let data = DatasetKind::Sald.generate(n, len, 99);

    let options = Options::default().with_leaf_capacity(100);
    let t0 = Instant::now();
    let index = MemoryIndex::build(data.clone(), Engine::Messi, &options)?;
    println!("MESSI index built in {:.1?}", t0.elapsed());

    // Compare against what the session would feel like on a serial scan.
    let seed_query = DatasetKind::Sald.queries(1, len, 99);
    let t_scan = Instant::now();
    let scan_hit = dsidx::ucr::scan_ed(&data, seed_query.get(0)).expect("non-empty");
    let scan_time = t_scan.elapsed();
    println!(
        "serial UCR scan for one query: {scan_time:.1?} (hit #{}) — the baseline feel",
        scan_hit.pos
    );

    // The exploration session: 12 hops, each query derived from the
    // previous answer.
    println!("\nexploration session (each hop = 1 exact query):");
    let nn = QuerySpec::nn();
    let mut current: Vec<f32> = seed_query.get(0).to_vec();
    let mut visited: Vec<u32> = Vec::new();
    let session_start = Instant::now();
    for hop in 0..12 {
        let t = Instant::now();
        let hit = index
            .search(&[current.as_slice()], &nn)?
            .into_nn()
            .expect("non-empty");
        let dt = t.elapsed();
        println!(
            "  hop {hop:>2}: #{:<6} dist {:.4}  in {dt:.2?}",
            hit.pos,
            hit.dist()
        );
        visited.push(hit.pos);
        // Next query: the answer epoch itself, nudged so we keep moving
        // instead of fixating (distance 0 to itself).
        current = data.get(hit.pos as usize).to_vec();
        let nudge = 1 + (hop as usize * 7) % 11;
        current.rotate_left(nudge);
        dsidx::series::znorm::znormalize(&mut current);
    }
    let session = session_start.elapsed();
    println!(
        "\nsession of {} hops: {session:.1?} total ({:.1?} per hop; serial scan would need ~{:.1?})",
        visited.len(),
        session / visited.len() as u32,
        scan_time * visited.len() as u32
    );

    // Pruning effectiveness on this hard (EEG-like) distribution — the
    // work counters ride along on any spec via `.with_stats()`.
    let answers = index.search(&[seed_query.get(0)], &QuerySpec::nn().with_stats())?;
    let stats = answers.query_stats(0).expect("stats requested");
    println!(
        "\npruning on EEG-like data: {} leaves enqueued, {} processed, {} real distances for {n} series",
        stats.leaves_enqueued, stats.leaves_processed, stats.real_computed
    );

    // When a hop only needs a plausible next epoch (not the provable
    // nearest), approximate fidelity answers from the best leaf alone.
    let t = Instant::now();
    let approx = index
        .search(
            &[seed_query.get(0)],
            &QuerySpec::nn().fidelity(Fidelity::Approximate),
        )?
        .into_nn()
        .expect("non-empty");
    println!(
        "approximate hop: #{:<6} dist {:.4} in {:.2?} (exact sibling above)",
        approx.pos,
        approx.dist(),
        t.elapsed()
    );
    Ok(())
}
