//! Seismic event matching: find recorded waveforms similar to a template.
//!
//! This mirrors the paper's Seismic workload: a large archive of fixed-
//! length seismograms, queried with event templates. Matched filtering /
//! template matching of this kind is how duplicate events and repeating
//! earthquakes are found — and it is exactly 1-NN similarity search.
//!
//! The example also shows why the DTW extension matters here: a template
//! whose P-wave arrival is shifted by a second still matches under DTW
//! while Euclidean distance misses it.
//!
//! Run with: `cargo run --release --example seismic_monitoring`

use dsidx::prelude::*;
use dsidx::series::znorm::znormalize;
use std::time::Instant;

fn main() -> Result<(), Error> {
    let n = 30_000;
    let len = 256;
    println!("archive: {n} seismic-like waveforms of {len} samples");
    let archive = DatasetKind::Seismic.generate(n, len, 7);

    let options = Options::default().with_leaf_capacity(100);
    let t0 = Instant::now();
    let index = MemoryIndex::build(archive.clone(), Engine::Messi, &options)?;
    println!("MESSI index built in {:.1?}\n", t0.elapsed());

    // Template 1: a waveform from the archive itself, plus sensor noise —
    // the "have we seen this event before?" query.
    let mut template = archive.get(12_345).to_vec();
    for (i, v) in template.iter_mut().enumerate() {
        *v += ((i * 2654435761) % 1000) as f32 / 1000.0 * 0.02 - 0.01;
    }
    znormalize(&mut template);
    let t1 = Instant::now();
    let hit = index
        .search(&[template.as_slice()], &QuerySpec::nn())?
        .into_nn()
        .expect("non-empty archive");
    println!(
        "noisy replay of event #12345     -> matched #{:<6} dist {:.4}  ({:.2?})",
        hit.pos,
        hit.dist(),
        t1.elapsed()
    );
    assert_eq!(hit.pos, 12_345, "the planted event must be recovered");

    // Template 2: the same event arriving ~8 samples later (origin-time
    // error). Euclidean distance is brittle to the shift; DTW absorbs it —
    // and switching measures is one builder call on the same spec.
    let mut shifted = archive.get(12_345).to_vec();
    shifted.rotate_right(8);
    znormalize(&mut shifted);
    let ed_hit = index
        .search(&[shifted.as_slice()], &QuerySpec::nn())?
        .into_nn()
        .expect("non-empty");
    let t2 = Instant::now();
    let dtw_hit = index
        .search(
            &[shifted.as_slice()],
            &QuerySpec::nn().measure(Measure::Dtw { band: 12 }),
        )?
        .into_nn()
        .expect("non-empty");
    println!(
        "shifted arrival, Euclidean       -> matched #{:<6} dist {:.4}",
        ed_hit.pos,
        ed_hit.dist()
    );
    println!(
        "shifted arrival, DTW (band 12)   -> matched #{:<6} dist {:.4}  ({:.2?})",
        dtw_hit.pos,
        dtw_hit.dist(),
        t2.elapsed()
    );
    println!(
        "\nDTW distance to the true event is {:.1}x smaller than Euclidean",
        ed_hit.dist() / dtw_hit.dist().max(1e-6)
    );

    // Batch screening: match a swarm of 50 fresh templates in ONE search
    // call (one engine schedule for the whole swarm) and report the
    // distance distribution — the interactive-analysis loop the paper's
    // introduction motivates.
    let swarm = DatasetKind::Seismic.queries(50, len, 7);
    let swarm_batch: Vec<&[f32]> = swarm.iter().collect();
    let t3 = Instant::now();
    let answers = index.search(&swarm_batch, &QuerySpec::nn().with_stats())?;
    let mut dists: Vec<f32> = (0..answers.len())
        .map(|i| answers.best(i).expect("non-empty").dist())
        .collect();
    let elapsed = t3.elapsed();
    println!(
        "\nswarm answered in {} pool broadcast(s) for {} queries",
        answers.stats().expect("stats requested").broadcasts,
        answers.len()
    );
    dists.sort_by(f32::total_cmp);
    println!(
        "\nscreened {} templates in {:.1?} ({:.1?} per query)",
        dists.len(),
        elapsed,
        elapsed / dists.len() as u32
    );
    println!(
        "nearest-distance quartiles: min {:.2}  p25 {:.2}  median {:.2}  p75 {:.2}  max {:.2}",
        dists[0],
        dists[dists.len() / 4],
        dists[dists.len() / 2],
        dists[3 * dists.len() / 4],
        dists[dists.len() - 1]
    );
    Ok(())
}
