//! Workspace root package: hosts the cross-crate integration tests
//! (`tests/`) and the runnable examples (`examples/`).
//!
//! The library users adopt is the [`dsidx`] crate (`crates/core`).

pub use dsidx;
