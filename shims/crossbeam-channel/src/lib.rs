//! Offline stand-in for the `crossbeam-channel` crate.
//!
//! The workspace builds in hermetic environments with no registry access,
//! so the subset of the crossbeam-channel API the codebase uses is
//! implemented here: multi-producer **multi-consumer** `bounded`/
//! `unbounded` channels (both `Sender` and `Receiver` are `Clone`),
//! blocking `send`/`recv`, and `try_recv`. Backed by a mutex-protected
//! deque with two condition variables; adequate for the worker-pool and
//! pipeline fan-out patterns this workspace relies on, not a lock-free
//! replacement.

use std::collections::VecDeque;
use std::fmt;
use std::sync::{Arc, Condvar, Mutex, PoisonError};

struct State<T> {
    queue: VecDeque<T>,
    senders: usize,
    receivers: usize,
}

struct Chan<T> {
    state: Mutex<State<T>>,
    capacity: Option<usize>,
    not_empty: Condvar,
    not_full: Condvar,
}

/// Error returned by [`Sender::send`] when all receivers are gone; carries
/// the unsent value.
#[derive(PartialEq, Eq, Clone, Copy)]
pub struct SendError<T>(pub T);

impl<T> fmt::Debug for SendError<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str("SendError(..)")
    }
}

impl<T> fmt::Display for SendError<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str("sending on a disconnected channel")
    }
}

/// Error returned by [`Receiver::recv`] when the channel is empty and all
/// senders are gone.
#[derive(Debug, PartialEq, Eq, Clone, Copy)]
pub struct RecvError;

impl fmt::Display for RecvError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str("receiving on an empty and disconnected channel")
    }
}

/// Error returned by [`Receiver::try_recv`].
#[derive(Debug, PartialEq, Eq, Clone, Copy)]
pub enum TryRecvError {
    /// The channel is currently empty.
    Empty,
    /// All senders are gone and the channel is drained.
    Disconnected,
}

/// The sending half of a channel. Cloning adds a producer.
pub struct Sender<T> {
    chan: Arc<Chan<T>>,
}

/// The receiving half of a channel. Cloning adds a consumer.
pub struct Receiver<T> {
    chan: Arc<Chan<T>>,
}

/// Creates a channel that holds at most `capacity` in-flight messages;
/// `send` blocks while full.
///
/// # Panics
/// Panics on `capacity == 0`: the real crossbeam-channel treats that as a
/// rendezvous channel, which this shim does not implement — failing loudly
/// beats deadlocking a future caller.
#[must_use]
pub fn bounded<T>(capacity: usize) -> (Sender<T>, Receiver<T>) {
    assert!(
        capacity > 0,
        "zero-capacity (rendezvous) channels are not supported by this shim"
    );
    make_channel(Some(capacity))
}

/// Creates a channel with unlimited buffering.
#[must_use]
pub fn unbounded<T>() -> (Sender<T>, Receiver<T>) {
    make_channel(None)
}

fn make_channel<T>(capacity: Option<usize>) -> (Sender<T>, Receiver<T>) {
    let chan = Arc::new(Chan {
        state: Mutex::new(State {
            queue: VecDeque::new(),
            senders: 1,
            receivers: 1,
        }),
        capacity,
        not_empty: Condvar::new(),
        not_full: Condvar::new(),
    });
    (
        Sender {
            chan: Arc::clone(&chan),
        },
        Receiver { chan },
    )
}

impl<T> Sender<T> {
    /// Delivers a message, blocking while a bounded channel is full.
    ///
    /// # Errors
    /// Returns the message if every receiver has been dropped.
    pub fn send(&self, value: T) -> Result<(), SendError<T>> {
        let mut state = self
            .chan
            .state
            .lock()
            .unwrap_or_else(PoisonError::into_inner);
        loop {
            if state.receivers == 0 {
                return Err(SendError(value));
            }
            match self.chan.capacity {
                Some(cap) if state.queue.len() >= cap => {
                    state = self
                        .chan
                        .not_full
                        .wait(state)
                        .unwrap_or_else(PoisonError::into_inner);
                }
                _ => break,
            }
        }
        state.queue.push_back(value);
        drop(state);
        self.chan.not_empty.notify_one();
        Ok(())
    }
}

impl<T> Clone for Sender<T> {
    fn clone(&self) -> Self {
        self.chan
            .state
            .lock()
            .unwrap_or_else(PoisonError::into_inner)
            .senders += 1;
        Self {
            chan: Arc::clone(&self.chan),
        }
    }
}

impl<T> Drop for Sender<T> {
    fn drop(&mut self) {
        let mut state = self
            .chan
            .state
            .lock()
            .unwrap_or_else(PoisonError::into_inner);
        state.senders -= 1;
        if state.senders == 0 {
            drop(state);
            // Blocked receivers must wake to observe the disconnect.
            self.chan.not_empty.notify_all();
        }
    }
}

impl<T> Receiver<T> {
    /// Takes the next message, blocking while the channel is empty.
    ///
    /// # Errors
    /// Fails once the channel is drained and every sender is dropped.
    pub fn recv(&self) -> Result<T, RecvError> {
        let mut state = self
            .chan
            .state
            .lock()
            .unwrap_or_else(PoisonError::into_inner);
        loop {
            if let Some(value) = state.queue.pop_front() {
                drop(state);
                self.chan.not_full.notify_one();
                return Ok(value);
            }
            if state.senders == 0 {
                return Err(RecvError);
            }
            state = self
                .chan
                .not_empty
                .wait(state)
                .unwrap_or_else(PoisonError::into_inner);
        }
    }

    /// Takes the next message if one is ready.
    ///
    /// # Errors
    /// [`TryRecvError::Empty`] when nothing is buffered,
    /// [`TryRecvError::Disconnected`] once drained with no senders left.
    pub fn try_recv(&self) -> Result<T, TryRecvError> {
        let mut state = self
            .chan
            .state
            .lock()
            .unwrap_or_else(PoisonError::into_inner);
        if let Some(value) = state.queue.pop_front() {
            drop(state);
            self.chan.not_full.notify_one();
            return Ok(value);
        }
        if state.senders == 0 {
            return Err(TryRecvError::Disconnected);
        }
        Err(TryRecvError::Empty)
    }
}

impl<T> Clone for Receiver<T> {
    fn clone(&self) -> Self {
        self.chan
            .state
            .lock()
            .unwrap_or_else(PoisonError::into_inner)
            .receivers += 1;
        Self {
            chan: Arc::clone(&self.chan),
        }
    }
}

impl<T> Drop for Receiver<T> {
    fn drop(&mut self) {
        let mut state = self
            .chan
            .state
            .lock()
            .unwrap_or_else(PoisonError::into_inner);
        state.receivers -= 1;
        if state.receivers == 0 {
            drop(state);
            // Blocked senders must wake to observe the disconnect.
            self.chan.not_full.notify_all();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn unbounded_send_and_receive() {
        let (tx, rx) = unbounded();
        tx.send(5).unwrap();
        assert_eq!(rx.recv().unwrap(), 5);
        assert_eq!(rx.try_recv(), Err(TryRecvError::Empty));
        drop(tx);
        assert_eq!(rx.try_recv(), Err(TryRecvError::Disconnected));
        assert_eq!(rx.recv(), Err(RecvError));
    }

    #[test]
    fn cloned_receivers_share_the_queue() {
        let (tx, rx1) = unbounded();
        let rx2 = rx1.clone();
        tx.send(1).unwrap();
        tx.send(2).unwrap();
        let a = rx1.recv().unwrap();
        let b = rx2.recv().unwrap();
        assert_eq!(a + b, 3);
    }

    #[test]
    fn bounded_send_blocks_until_drained() {
        let (tx, rx) = bounded(1);
        tx.send(1).unwrap();
        let h = std::thread::spawn(move || {
            tx.send(2).unwrap(); // blocks until the first recv below
            tx.send(3).unwrap();
        });
        assert_eq!(rx.recv().unwrap(), 1);
        assert_eq!(rx.recv().unwrap(), 2);
        assert_eq!(rx.recv().unwrap(), 3);
        h.join().unwrap();
    }

    #[test]
    fn send_to_dropped_receiver_fails() {
        let (tx, rx) = bounded(1);
        drop(rx);
        assert_eq!(tx.send(9), Err(SendError(9)));
    }

    #[test]
    fn mpmc_under_contention_delivers_everything() {
        let (tx, rx) = bounded::<u64>(4);
        let consumers: Vec<_> = (0..3)
            .map(|_| {
                let rx = rx.clone();
                std::thread::spawn(move || {
                    let mut sum = 0u64;
                    while let Ok(v) = rx.recv() {
                        sum += v;
                    }
                    sum
                })
            })
            .collect();
        drop(rx);
        let producers: Vec<_> = (0..2)
            .map(|_| {
                let tx = tx.clone();
                std::thread::spawn(move || {
                    for v in 1..=100u64 {
                        tx.send(v).unwrap();
                    }
                })
            })
            .collect();
        drop(tx);
        for p in producers {
            p.join().unwrap();
        }
        let total: u64 = consumers.into_iter().map(|c| c.join().unwrap()).sum();
        assert_eq!(total, 2 * (100 * 101) / 2);
    }
}
