//! Offline stand-in for the `criterion` crate.
//!
//! Supports the subset of the criterion API the `dsidx-bench` benches use
//! (`benchmark_group`, `bench_function`, `bench_with_input`, timing knobs,
//! the `criterion_group!`/`criterion_main!` macros) with a plain
//! wall-clock runner: warm up, time batches until the measurement window
//! closes, print mean time per iteration. No statistics, plots, or HTML
//! reports — numbers land on stdout.

use std::fmt::Display;
use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// The benchmark driver handed to `criterion_group!` functions.
#[derive(Debug, Default)]
pub struct Criterion {}

impl Criterion {
    /// Starts a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: &str) -> BenchmarkGroup<'_> {
        println!("\nbenchmark group: {name}");
        BenchmarkGroup {
            _criterion: self,
            sample_size: 100,
            measurement_time: Duration::from_secs(5),
            warm_up_time: Duration::from_secs(3),
        }
    }
}

/// A named benchmark identifier, optionally parameterized.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    /// An id labelled `name/parameter`.
    pub fn new(name: impl Into<String>, parameter: impl Display) -> Self {
        Self {
            id: format!("{}/{}", name.into(), parameter),
        }
    }
}

impl From<&str> for BenchmarkId {
    fn from(name: &str) -> Self {
        Self {
            id: name.to_owned(),
        }
    }
}

/// A group of benchmarks sharing timing configuration.
#[derive(Debug)]
pub struct BenchmarkGroup<'a> {
    _criterion: &'a mut Criterion,
    sample_size: usize,
    measurement_time: Duration,
    warm_up_time: Duration,
}

impl BenchmarkGroup<'_> {
    /// Sets the target number of samples (used to bound iteration counts).
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        assert!(n > 0, "sample size must be non-zero");
        self.sample_size = n;
        self
    }

    /// Sets the measurement window.
    pub fn measurement_time(&mut self, d: Duration) -> &mut Self {
        self.measurement_time = d;
        self
    }

    /// Sets the warm-up window.
    pub fn warm_up_time(&mut self, d: Duration) -> &mut Self {
        self.warm_up_time = d;
        self
    }

    /// Runs one benchmark.
    pub fn bench_function<F>(&mut self, id: impl Into<BenchmarkId>, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let id = id.into();
        let mut bencher = Bencher {
            warm_up_time: self.warm_up_time,
            measurement_time: self.measurement_time,
            mean: Duration::ZERO,
            iters: 0,
        };
        f(&mut bencher);
        println!(
            "  {:<40} {:>12.3?}/iter ({} iters)",
            id.id, bencher.mean, bencher.iters
        );
        self
    }

    /// Runs one benchmark against a borrowed input.
    pub fn bench_with_input<I: ?Sized, F>(
        &mut self,
        id: impl Into<BenchmarkId>,
        input: &I,
        mut f: F,
    ) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        self.bench_function(id, |b| f(b, input))
    }

    /// Ends the group (report already printed incrementally).
    pub fn finish(self) {}
}

/// Times closures for one benchmark.
#[derive(Debug)]
pub struct Bencher {
    warm_up_time: Duration,
    measurement_time: Duration,
    mean: Duration,
    iters: u64,
}

impl Bencher {
    /// Runs `f` repeatedly: a warm-up window, then a measurement window.
    pub fn iter<R, F: FnMut() -> R>(&mut self, mut f: F) {
        let warm_end = Instant::now() + self.warm_up_time;
        while Instant::now() < warm_end {
            black_box(f());
        }
        let start = Instant::now();
        let mut iters = 0u64;
        loop {
            black_box(f());
            iters += 1;
            if start.elapsed() >= self.measurement_time {
                break;
            }
        }
        self.mean = start.elapsed() / u32::try_from(iters).unwrap_or(u32::MAX);
        self.iters = iters;
    }
}

/// Bundles benchmark functions into one runner function.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        fn $group() {
            let mut criterion = $crate::Criterion::default();
            $( $target(&mut criterion); )+
        }
    };
}

/// Emits `main` running the given groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_runs_and_reports() {
        let mut c = Criterion::default();
        let mut group = c.benchmark_group("shim");
        group
            .sample_size(10)
            .measurement_time(Duration::from_millis(5))
            .warm_up_time(Duration::from_millis(1));
        let mut ran = 0u64;
        group.bench_function("counting", |b| b.iter(|| ran += 1));
        group.bench_with_input(BenchmarkId::new("with_input", 3), &3u64, |b, &x| {
            b.iter(|| x * 2)
        });
        group.finish();
        assert!(ran > 0);
    }
}
