//! Offline stand-in for the `proptest` crate.
//!
//! Implements the subset of the proptest API this workspace's property
//! tests use — the [`Strategy`] trait with `prop_map`/`prop_flat_map`,
//! range/tuple/[`Just`]/`collection::vec` strategies, the [`proptest!`]
//! macro, and `prop_assert!`/`prop_assert_eq!` — over a deterministic
//! SplitMix64 generator. There is no shrinking: a failing case panics with
//! the case number, and re-running reproduces it exactly (generation is
//! seeded only by the case number).

use std::ops::{Range, RangeInclusive};

/// Deterministic per-case random source (SplitMix64).
#[derive(Debug, Clone)]
pub struct TestRng {
    state: u64,
}

impl TestRng {
    /// The generator for one numbered test case. Deterministic: case `i`
    /// of any test always sees the same stream.
    #[must_use]
    pub fn for_case(case: u64) -> Self {
        Self {
            state: case.wrapping_mul(0x9E37_79B9_7F4A_7C15) ^ 0xD1B5_4A32_D192_ED03,
        }
    }

    /// Next raw 64-bit value.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// Uniform draw from `[0, 1)`.
    pub fn next_unit_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 / (1u64 << 53) as f64
    }

    /// Uniform draw from `[lo, hi)` (`lo < hi`).
    pub fn next_u64_in(&mut self, lo: u64, hi: u64) -> u64 {
        debug_assert!(lo < hi, "empty range");
        lo + self.next_u64() % (hi - lo)
    }
}

/// A recipe for generating values of one type.
pub trait Strategy {
    /// The generated type.
    type Value;

    /// Draws one value.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    /// Transforms generated values.
    fn prop_map<O, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> O,
    {
        Map { base: self, f }
    }

    /// Chains a dependent strategy off each generated value.
    fn prop_flat_map<S, F>(self, f: F) -> FlatMap<Self, F>
    where
        Self: Sized,
        S: Strategy,
        F: Fn(Self::Value) -> S,
    {
        FlatMap { base: self, f }
    }
}

/// Strategy returning clones of a fixed value.
#[derive(Debug, Clone)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;

    fn generate(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

/// See [`Strategy::prop_map`].
#[derive(Debug, Clone)]
pub struct Map<S, F> {
    base: S,
    f: F,
}

impl<S, O, F> Strategy for Map<S, F>
where
    S: Strategy,
    F: Fn(S::Value) -> O,
{
    type Value = O;

    fn generate(&self, rng: &mut TestRng) -> O {
        (self.f)(self.base.generate(rng))
    }
}

/// See [`Strategy::prop_flat_map`].
#[derive(Debug, Clone)]
pub struct FlatMap<S, F> {
    base: S,
    f: F,
}

impl<S, T, F> Strategy for FlatMap<S, F>
where
    S: Strategy,
    T: Strategy,
    F: Fn(S::Value) -> T,
{
    type Value = T::Value;

    fn generate(&self, rng: &mut TestRng) -> T::Value {
        (self.f)(self.base.generate(rng)).generate(rng)
    }
}

macro_rules! int_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;

            #[allow(clippy::cast_possible_truncation, clippy::cast_sign_loss, clippy::cast_lossless)]
            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                rng.next_u64_in(self.start as u64, self.end as u64) as $t
            }
        }

        impl Strategy for RangeInclusive<$t> {
            type Value = $t;

            #[allow(clippy::cast_possible_truncation, clippy::cast_sign_loss, clippy::cast_lossless)]
            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.start() <= self.end(), "empty range strategy");
                rng.next_u64_in(*self.start() as u64, *self.end() as u64 + 1) as $t
            }
        }
    )*};
}

int_range_strategy!(usize, u8, u16, u32, u64);

macro_rules! float_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;

            #[allow(clippy::cast_possible_truncation)]
            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                self.start + (self.end - self.start) * rng.next_unit_f64() as $t
            }
        }
    )*};
}

float_range_strategy!(f32, f64);

macro_rules! tuple_strategy {
    ($(($($s:ident),+))*) => {$(
        impl<$($s: Strategy),+> Strategy for ($($s,)+) {
            type Value = ($($s::Value,)+);

            #[allow(non_snake_case)]
            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                let ($($s,)+) = self;
                ($($s.generate(rng),)+)
            }
        }
    )*};
}

tuple_strategy! {
    (A)
    (A, B)
    (A, B, C)
    (A, B, C, D)
    (A, B, C, D, E)
    (A, B, C, D, E, F)
}

/// Collection strategies (`prop::collection::vec`).
pub mod collection {
    use super::{Strategy, TestRng};

    /// A count or range of counts for generated collections.
    #[derive(Debug, Clone)]
    pub struct SizeRange {
        lo: usize,
        hi_inclusive: usize,
    }

    impl From<usize> for SizeRange {
        fn from(n: usize) -> Self {
            Self {
                lo: n,
                hi_inclusive: n,
            }
        }
    }

    impl From<std::ops::Range<usize>> for SizeRange {
        fn from(r: std::ops::Range<usize>) -> Self {
            assert!(r.start < r.end, "empty size range");
            Self {
                lo: r.start,
                hi_inclusive: r.end - 1,
            }
        }
    }

    impl From<std::ops::RangeInclusive<usize>> for SizeRange {
        fn from(r: std::ops::RangeInclusive<usize>) -> Self {
            Self {
                lo: *r.start(),
                hi_inclusive: *r.end(),
            }
        }
    }

    /// Strategy for `Vec`s of values drawn from `element`.
    #[derive(Debug, Clone)]
    pub struct VecStrategy<S> {
        element: S,
        size: SizeRange,
    }

    /// Generates vectors whose length falls in `size`.
    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy {
            element,
            size: size.into(),
        }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;

        fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let len =
                rng.next_u64_in(self.size.lo as u64, self.size.hi_inclusive as u64 + 1) as usize;
            (0..len).map(|_| self.element.generate(rng)).collect()
        }
    }
}

/// Run configuration for one `proptest!` block.
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of generated cases per test.
    pub cases: u32,
}

impl Default for ProptestConfig {
    fn default() -> Self {
        Self { cases: 256 }
    }
}

impl ProptestConfig {
    /// A config running `cases` cases.
    #[must_use]
    pub fn with_cases(cases: u32) -> Self {
        Self { cases }
    }
}

/// Asserts a condition inside a property test (no shrinking: forwards to
/// `assert!`).
#[macro_export]
macro_rules! prop_assert {
    ($($t:tt)*) => { assert!($($t)*) };
}

/// Asserts equality inside a property test (forwards to `assert_eq!`).
#[macro_export]
macro_rules! prop_assert_eq {
    ($($t:tt)*) => { assert_eq!($($t)*) };
}

/// Declares property tests: each function runs its body once per generated
/// case, with arguments drawn from the given strategies.
#[macro_export]
macro_rules! proptest {
    (
        @cfg ($config:expr)
        $(
            $(#[$meta:meta])*
            fn $name:ident($($pat:pat in $strat:expr),+ $(,)?) $body:block
        )*
    ) => {
        $(
            $(#[$meta])*
            fn $name() {
                let config: $crate::ProptestConfig = $config;
                let strategy = ($($strat,)+);
                for case in 0..u64::from(config.cases) {
                    let mut rng = $crate::TestRng::for_case(case);
                    let ($($pat,)+) = $crate::Strategy::generate(&strategy, &mut rng);
                    $body
                }
            }
        )*
    };
    (
        #![proptest_config($config:expr)]
        $($rest:tt)*
    ) => {
        $crate::proptest! { @cfg ($config) $($rest)* }
    };
    (
        $($rest:tt)*
    ) => {
        $crate::proptest! { @cfg ($crate::ProptestConfig::default()) $($rest)* }
    };
}

/// The glob-import surface (`use proptest::prelude::*`).
pub mod prelude {
    pub use crate::collection;
    pub use crate::{prop_assert, prop_assert_eq, proptest};
    pub use crate::{Just, ProptestConfig, Strategy, TestRng};

    /// Namespace mirror of the real crate's `prop::` module tree.
    pub mod prop {
        pub use crate::collection;
    }
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    #[test]
    fn ranges_stay_in_bounds() {
        let mut rng = TestRng::for_case(7);
        for _ in 0..1000 {
            let v = Strategy::generate(&(3usize..10), &mut rng);
            assert!((3..10).contains(&v));
            let f = Strategy::generate(&(-2.0f32..2.0), &mut rng);
            assert!((-2.0..2.0).contains(&f));
            let i = Strategy::generate(&(1usize..=4), &mut rng);
            assert!((1..=4).contains(&i));
        }
    }

    #[test]
    fn generation_is_deterministic() {
        let strat = collection::vec(0.0f64..1.0, 5..20);
        let a = Strategy::generate(&strat, &mut TestRng::for_case(3));
        let b = Strategy::generate(&strat, &mut TestRng::for_case(3));
        assert_eq!(a, b);
        let c = Strategy::generate(&strat, &mut TestRng::for_case(4));
        assert_ne!(a, c);
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        #[test]
        fn macro_draws_dependent_sizes((len, v) in (1usize..8).prop_flat_map(|n| (Just(n), collection::vec(0u32..100, n))), extra in 0usize..3) {
            prop_assert_eq!(v.len(), len);
            prop_assert!(extra < 3);
            prop_assert!(v.iter().all(|&x| x < 100));
        }
    }
}
