//! Offline stand-in for the `parking_lot` crate.
//!
//! The workspace builds in hermetic environments with no registry access,
//! so the subset of the `parking_lot` API the codebase uses is provided
//! here over `std::sync` primitives. Semantic differences that matter and
//! are preserved: `lock()` returns the guard directly (no poison `Result`;
//! a poisoned std lock is transparently recovered), and `Condvar::wait`
//! takes `&mut MutexGuard` instead of consuming the guard.

use std::ops::{Deref, DerefMut};
use std::sync::PoisonError;

/// A mutual-exclusion lock with the `parking_lot` calling convention.
#[derive(Debug, Default)]
pub struct Mutex<T: ?Sized> {
    inner: std::sync::Mutex<T>,
}

/// RAII guard returned by [`Mutex::lock`].
#[derive(Debug)]
pub struct MutexGuard<'a, T: ?Sized> {
    // `Option` so `Condvar::wait` can temporarily take the std guard out
    // (std's wait consumes it); always `Some` outside that window.
    inner: Option<std::sync::MutexGuard<'a, T>>,
}

impl<T> Mutex<T> {
    /// Creates a new mutex.
    pub const fn new(value: T) -> Self {
        Self {
            inner: std::sync::Mutex::new(value),
        }
    }

    /// Consumes the mutex, returning the inner value.
    pub fn into_inner(self) -> T {
        self.inner
            .into_inner()
            .unwrap_or_else(PoisonError::into_inner)
    }
}

impl<T: ?Sized> Mutex<T> {
    /// Acquires the lock, blocking until it is available.
    pub fn lock(&self) -> MutexGuard<'_, T> {
        MutexGuard {
            inner: Some(self.inner.lock().unwrap_or_else(PoisonError::into_inner)),
        }
    }

    /// Attempts to acquire the lock without blocking.
    pub fn try_lock(&self) -> Option<MutexGuard<'_, T>> {
        match self.inner.try_lock() {
            Ok(g) => Some(MutexGuard { inner: Some(g) }),
            Err(std::sync::TryLockError::Poisoned(e)) => Some(MutexGuard {
                inner: Some(e.into_inner()),
            }),
            Err(std::sync::TryLockError::WouldBlock) => None,
        }
    }

    /// Mutable access without locking (the borrow proves exclusivity).
    pub fn get_mut(&mut self) -> &mut T {
        self.inner.get_mut().unwrap_or_else(PoisonError::into_inner)
    }
}

impl<T: ?Sized> Deref for MutexGuard<'_, T> {
    type Target = T;

    fn deref(&self) -> &T {
        self.inner.as_deref().expect("guard holds the lock")
    }
}

impl<T: ?Sized> DerefMut for MutexGuard<'_, T> {
    fn deref_mut(&mut self) -> &mut T {
        self.inner.as_deref_mut().expect("guard holds the lock")
    }
}

/// A condition variable paired with [`Mutex`].
#[derive(Debug, Default)]
pub struct Condvar {
    inner: std::sync::Condvar,
}

impl Condvar {
    /// Creates a new condition variable.
    #[must_use]
    pub const fn new() -> Self {
        Self {
            inner: std::sync::Condvar::new(),
        }
    }

    /// Blocks until notified, releasing the guarded lock while waiting.
    pub fn wait<T>(&self, guard: &mut MutexGuard<'_, T>) {
        let std_guard = guard.inner.take().expect("guard holds the lock");
        let std_guard = self
            .inner
            .wait(std_guard)
            .unwrap_or_else(PoisonError::into_inner);
        guard.inner = Some(std_guard);
    }

    /// Wakes one waiting thread.
    pub fn notify_one(&self) {
        self.inner.notify_one();
    }

    /// Wakes all waiting threads.
    pub fn notify_all(&self) {
        self.inner.notify_all();
    }
}

/// A reader-writer lock with the `parking_lot` calling convention.
#[derive(Debug, Default)]
pub struct RwLock<T: ?Sized> {
    inner: std::sync::RwLock<T>,
}

/// RAII guard returned by [`RwLock::read`].
pub type RwLockReadGuard<'a, T> = std::sync::RwLockReadGuard<'a, T>;
/// RAII guard returned by [`RwLock::write`].
pub type RwLockWriteGuard<'a, T> = std::sync::RwLockWriteGuard<'a, T>;

impl<T> RwLock<T> {
    /// Creates a new reader-writer lock.
    pub const fn new(value: T) -> Self {
        Self {
            inner: std::sync::RwLock::new(value),
        }
    }

    /// Consumes the lock, returning the inner value.
    pub fn into_inner(self) -> T {
        self.inner
            .into_inner()
            .unwrap_or_else(PoisonError::into_inner)
    }
}

impl<T: ?Sized> RwLock<T> {
    /// Acquires a shared read lock.
    pub fn read(&self) -> RwLockReadGuard<'_, T> {
        self.inner.read().unwrap_or_else(PoisonError::into_inner)
    }

    /// Acquires an exclusive write lock.
    pub fn write(&self) -> RwLockWriteGuard<'_, T> {
        self.inner.write().unwrap_or_else(PoisonError::into_inner)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn mutex_roundtrip() {
        let m = Mutex::new(1);
        *m.lock() += 41;
        assert_eq!(*m.lock(), 42);
        assert_eq!(m.into_inner(), 42);
    }

    #[test]
    fn condvar_wakes_waiter() {
        let pair = Arc::new((Mutex::new(false), Condvar::new()));
        let p2 = Arc::clone(&pair);
        let h = std::thread::spawn(move || {
            let (lock, cv) = &*p2;
            let mut started = lock.lock();
            while !*started {
                cv.wait(&mut started);
            }
        });
        {
            let (lock, cv) = &*pair;
            *lock.lock() = true;
            cv.notify_all();
        }
        h.join().unwrap();
    }

    #[test]
    fn rwlock_roundtrip() {
        let l = RwLock::new(7);
        assert_eq!(*l.read(), 7);
        *l.write() = 9;
        assert_eq!(l.into_inner(), 9);
    }
}
