//! Facade-surface snapshot: the public API of the `dsidx` facade crate
//! (`crates/core`) is extracted from its sources and compared against a
//! hand-maintained surface list, so growth of the facade is a deliberate,
//! reviewed act — the regression guard for the one-query-plane redesign
//! (the pre-plane facade had grown a ~22-method matrix nobody signed off
//! on).
//!
//! On mismatch the test prints the freshly extracted surface; if the
//! change is intentional, copy it into `tests/public_api_surface.txt`.

use std::fmt::Write as _;
use std::path::Path;

/// Extracts `pub fn` / `pub struct` / `pub enum` / `pub trait` items from
/// one source file, skipping comments and `#[cfg(test)]` items. The
/// skip tracks brace depth, so it ends where the test module ends — a
/// `pub` item *after* a test module still lands in the snapshot.
fn extract(source: &str) -> Vec<String> {
    let mut items = Vec::new();
    let mut in_tests = false;
    let mut depth = 0i64;
    let mut entered = false;
    for line in source.lines() {
        let t = line.trim_start();
        if !in_tests && t.starts_with("#[cfg(test)]") {
            in_tests = true;
            depth = 0;
            entered = false;
        }
        if in_tests {
            // Net brace count per line is a good-enough tracker here:
            // braces inside string literals come in balanced pairs in
            // this codebase's test code.
            for c in line.chars() {
                match c {
                    '{' => {
                        depth += 1;
                        entered = true;
                    }
                    '}' => depth -= 1,
                    _ => {}
                }
            }
            if entered && depth <= 0 {
                in_tests = false;
            }
            continue;
        }
        if t.starts_with("//") {
            continue;
        }
        for (prefix, kind) in [
            ("pub fn ", "fn"),
            ("pub struct ", "struct"),
            ("pub enum ", "enum"),
            ("pub trait ", "trait"),
            ("pub const ", "const"),
        ] {
            if let Some(rest) = t.strip_prefix(prefix) {
                let name: String = rest
                    .chars()
                    .take_while(|c| c.is_alphanumeric() || *c == '_')
                    .collect();
                if !name.is_empty() {
                    items.push(format!("{kind} {name}"));
                }
            }
        }
    }
    items
}

#[test]
fn facade_public_surface_matches_snapshot() {
    let core = Path::new(env!("CARGO_MANIFEST_DIR")).join("crates/core/src");
    let mut surface = String::new();
    for file in [
        "answers.rs",
        "engine.rs",
        "error.rs",
        "options.rs",
        "search.rs",
        "shard.rs",
        "spec.rs",
    ] {
        let source = std::fs::read_to_string(core.join(file))
            .unwrap_or_else(|e| panic!("reading {file}: {e}"));
        let mut items = extract(&source);
        items.sort();
        for item in items {
            writeln!(surface, "{file}: {item}").unwrap();
        }
    }
    let snapshot_path = Path::new(env!("CARGO_MANIFEST_DIR")).join("tests/public_api_surface.txt");
    let snapshot = std::fs::read_to_string(&snapshot_path)
        .unwrap_or_else(|e| panic!("reading {}: {e}", snapshot_path.display()));
    assert_eq!(
        snapshot.trim(),
        surface.trim(),
        "\n\nThe dsidx facade's public surface changed. If this is deliberate,\n\
         update tests/public_api_surface.txt to:\n\n{surface}\n"
    );
}
