//! End-to-end on-disk behaviour: the facade's `DiskIndex` over real files
//! with modeled devices, failure injection, device accounting.

#![allow(deprecated)] // pins the legacy wrappers; tests/query_plane.rs relates them to QuerySpec

use dsidx::prelude::*;
use dsidx::storage::write_dataset;
use dsidx::ucr::brute_force;
use std::sync::Arc;

fn tmpdir(name: &str) -> std::path::PathBuf {
    let dir = std::env::temp_dir().join(format!("dsidx-it-{}-{name}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    dir
}

fn opts() -> Options {
    Options::default().with_threads(4).with_leaf_capacity(20)
}

#[test]
fn disk_engines_agree_with_brute_force() {
    let dir = tmpdir("agree");
    let data = DatasetKind::Synthetic.generate(600, 64, 42);
    let path = dir.join("data.dsidx");
    write_dataset(&path, &data, Arc::new(Device::unthrottled())).unwrap();
    let queries = DatasetKind::Synthetic.queries(4, 64, 42);
    for engine in Engine::ALL {
        let o = Options {
            block_series: 64,
            generation_series: 128,
            ..opts()
        };
        let idx = DiskIndex::build(&path, &dir, engine, &o, DeviceProfile::UNTHROTTLED).unwrap();
        for q in queries.iter() {
            let want = brute_force(&data, q).unwrap();
            let got = idx.nn(q).unwrap().unwrap();
            assert_eq!(got.pos, want.pos, "{}", engine.name());
        }
    }
}

/// The disk==memory equivalence the MESSI-on-disk refactor promises:
/// a `DiskIndex` answers **bit-identically** to a `MemoryIndex` built over
/// the same data, on every engine, across every (fidelity, measure) cell —
/// approximate fidelity included, which pins the deterministic tree builds
/// (the approximate answer is the query's own leaf, a shape-dependent
/// notion).
#[test]
fn disk_answers_are_bit_identical_to_memory_on_every_cell() {
    let dir = tmpdir("bitident");
    let data = DatasetKind::Sald.generate(400, 64, 4071);
    let path = dir.join("data.dsidx");
    write_dataset(&path, &data, Arc::new(Device::unthrottled())).unwrap();
    let qs = DatasetKind::Sald.queries(3, 64, 4071);
    let qrefs: Vec<&[f32]> = qs.iter().collect();
    let o = Options {
        block_series: 64,
        generation_series: 128,
        ..opts()
    };
    for engine in Engine::ALL {
        let mem = MemoryIndex::build(data.clone(), engine, &o).unwrap();
        let disk = DiskIndex::build(&path, &dir, engine, &o, DeviceProfile::UNTHROTTLED).unwrap();
        for fidelity in [Fidelity::Exact, Fidelity::Approximate] {
            for measure in [Measure::Euclidean, Measure::Dtw { band: 4 }] {
                let spec = QuerySpec::knn(5).measure(measure).fidelity(fidelity);
                let m = mem.search(&qrefs, &spec).unwrap();
                let d = disk.search(&qrefs, &spec).unwrap();
                for qi in 0..qrefs.len() {
                    let (mm, dd) = (&m.matches()[qi], &d.matches()[qi]);
                    assert_eq!(
                        mm.len(),
                        dd.len(),
                        "{} {fidelity:?} {measure:?} q{qi}",
                        engine.name()
                    );
                    for (a, b) in mm.iter().zip(dd.iter()) {
                        assert_eq!(
                            (a.pos, a.dist_sq.to_bits()),
                            (b.pos, b.dist_sq.to_bits()),
                            "{} {fidelity:?} {measure:?} q{qi}",
                            engine.name()
                        );
                    }
                }
            }
        }
    }
}

/// On-disk MESSI keeps the in-memory batching invariant: a whole batch —
/// ED or DTW — is answered by at most one traversal broadcast, while
/// candidate reads are charged to the device.
#[test]
fn messi_on_disk_batches_in_one_broadcast() {
    let dir = tmpdir("mbatch");
    let data = DatasetKind::Seismic.generate(500, 64, 77);
    let path = dir.join("data.dsidx");
    write_dataset(&path, &data, Arc::new(Device::unthrottled())).unwrap();
    let idx = DiskIndex::build(
        &path,
        &dir,
        Engine::Messi,
        &opts(),
        DeviceProfile::UNTHROTTLED,
    )
    .unwrap();
    let qs = DatasetKind::Seismic.queries(6, 64, 77);
    let batch: Vec<&[f32]> = qs.iter().collect();
    for measure in [Measure::Euclidean, Measure::Dtw { band: 4 }] {
        idx.file().device().reset_stats();
        let answers = idx
            .search(&batch, &QuerySpec::knn(3).measure(measure).with_stats())
            .unwrap();
        assert_eq!(
            answers.stats().unwrap().broadcasts,
            1,
            "{measure:?}: one broadcast for the whole batch"
        );
        assert!(
            idx.file().device().stats().bytes_read > 0,
            "{measure:?}: candidate reads must be charged to the device"
        );
    }
}

#[test]
fn build_report_reflects_overlap() {
    let dir = tmpdir("report");
    let n = 8000;
    let data = DatasetKind::Synthetic.generate(n, 64, 7);
    let path = dir.join("data.dsidx");
    write_dataset(&path, &data, Arc::new(Device::unthrottled())).unwrap();
    let o = Options {
        block_series: 250,
        generation_series: 1000,
        leaf_capacity: 10, // more split work per generation
        ..opts()
    };
    // min-of-2 damps scheduler noise in the tiny per-phase spans.
    let stall_of = |engine: Engine| {
        let mut best: Option<(std::time::Duration, usize, usize)> = None;
        for _ in 0..2 {
            let idx = DiskIndex::build(&path, &dir, engine, &o, DeviceProfile::HDD).unwrap();
            let r = idx.build_report().expect("pipeline engines report");
            assert_eq!(idx.stats().entry_count, n);
            let candidate = (r.stall, r.generations, idx.stats().entry_count);
            if best.as_ref().is_none_or(|b| candidate.0 < b.0) {
                best = Some(candidate);
            }
        }
        best.expect("two builds ran")
    };
    let (stall_paris, gens, _) = stall_of(Engine::Paris);
    let (stall_plus, _, _) = stall_of(Engine::ParisPlus);
    assert!(gens >= 5, "want several generations, got {gens}");
    assert!(
        stall_plus < stall_paris,
        "ParIS+ stall ({stall_plus:?}) must be below ParIS stall ({stall_paris:?})"
    );
}

#[test]
fn queries_charge_the_device() {
    let dir = tmpdir("charge");
    let data = DatasetKind::Seismic.generate(400, 64, 3);
    let path = dir.join("data.dsidx");
    write_dataset(&path, &data, Arc::new(Device::unthrottled())).unwrap();
    let idx = DiskIndex::build(
        &path,
        &dir,
        Engine::ParisPlus,
        &opts(),
        DeviceProfile::UNTHROTTLED,
    )
    .unwrap();
    idx.file().device().reset_stats();
    let q = DatasetKind::Seismic.queries(1, 64, 3);
    let _ = idx.nn(q.get(0)).unwrap().unwrap();
    let stats = idx.file().device().stats();
    assert!(
        stats.bytes_read > 0,
        "query must read raw values through the device"
    );
}

#[test]
fn corrupt_files_error_cleanly() {
    let dir = tmpdir("corrupt");
    // Not a dataset at all.
    let bogus = dir.join("bogus.dsidx");
    std::fs::write(&bogus, b"this is not a dataset file at all........").unwrap();
    let e = DiskIndex::build(
        &bogus,
        &dir,
        Engine::Paris,
        &opts(),
        DeviceProfile::UNTHROTTLED,
    );
    assert!(e.is_err());
    // Truncated payload.
    let data = DatasetKind::Synthetic.generate(50, 32, 5);
    let path = dir.join("trunc.dsidx");
    write_dataset(&path, &data, Arc::new(Device::unthrottled())).unwrap();
    let bytes = std::fs::read(&path).unwrap();
    std::fs::write(&path, &bytes[..bytes.len() - 9]).unwrap();
    let e = DiskIndex::build(
        &path,
        &dir,
        Engine::Ads,
        &opts(),
        DeviceProfile::UNTHROTTLED,
    );
    assert!(e.is_err(), "truncated file must be rejected");
}

#[test]
fn wrong_length_query_is_a_structured_error() {
    let dir = tmpdir("wrongq");
    let data = DatasetKind::Synthetic.generate(50, 64, 5);
    let path = dir.join("data.dsidx");
    write_dataset(&path, &data, Arc::new(Device::unthrottled())).unwrap();
    let idx = DiskIndex::build(
        &path,
        &dir,
        Engine::Ads,
        &opts(),
        DeviceProfile::UNTHROTTLED,
    )
    .unwrap();
    // The query plane validates before any engine runs: a mis-sized query
    // comes back as InvalidSpec::QueryLength (not a panic), through the
    // new spelling and the legacy wrapper alike.
    let short = [0.0f32; 16];
    let e = idx.search(&[&short[..]], &QuerySpec::nn());
    assert!(matches!(
        e,
        Err(Error::InvalidSpec(InvalidSpec::QueryLength {
            expected: 64,
            got: 16,
            index: 0
        }))
    ));
    assert!(matches!(
        idx.nn(&[0.0; 16]),
        Err(Error::InvalidSpec(InvalidSpec::QueryLength { .. }))
    ));
}

#[test]
fn hdd_queries_slower_than_ssd_queries() {
    let dir = tmpdir("devices");
    let data = DatasetKind::Synthetic.generate(3000, 64, 21);
    let path = dir.join("data.dsidx");
    write_dataset(&path, &data, Arc::new(Device::unthrottled())).unwrap();
    let mut times = Vec::new();
    let queries = DatasetKind::Synthetic.queries(3, 64, 21);
    for profile in [DeviceProfile::HDD, DeviceProfile::SSD] {
        let idx = DiskIndex::build(&path, &dir, Engine::ParisPlus, &opts(), profile).unwrap();
        let t = std::time::Instant::now();
        for q in queries.iter() {
            let _ = idx.nn(q).unwrap().unwrap();
        }
        times.push(t.elapsed());
    }
    assert!(
        times[0] > times[1],
        "HDD ({:?}) should be slower than SSD ({:?})",
        times[0],
        times[1]
    );
}
