//! Cross-crate property tests: for arbitrary (small) collections and
//! queries, every engine's answer equals brute force — the system-level
//! statement of the lower-bound soundness invariant.

#![allow(deprecated)] // pins the legacy wrappers; tests/query_plane.rs relates them to QuerySpec

use dsidx::prelude::*;
use dsidx::ucr::{brute_force, dtw::brute_force_dtw};
use proptest::prelude::*;

/// A z-normalized collection plus one query, as flat data.
fn collection() -> impl Strategy<Value = (usize, Vec<f32>, Vec<f32>)> {
    (8usize..64).prop_flat_map(|len| {
        (1usize..60).prop_flat_map(move |count| {
            (
                Just(len),
                prop::collection::vec(-10.0f32..10.0, count * len),
                prop::collection::vec(-10.0f32..10.0, len),
            )
        })
    })
}

fn normalize(len: usize, flat: Vec<f32>) -> Dataset {
    let mut ds = Dataset::from_flat(flat, len).unwrap();
    ds.znormalize_all();
    ds
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn engines_equal_brute_force((len, flat, mut q) in collection(), leaf in 1usize..40) {
        let data = normalize(len, flat);
        dsidx::series::znorm::znormalize(&mut q);
        let want = brute_force(&data, &q).unwrap();
        let opts = Options::default()
            .with_threads(3)
            .with_leaf_capacity(leaf)
            .with_segments(8.min(len));
        for engine in Engine::ALL {
            let idx = MemoryIndex::build(data.clone(), engine, &opts).unwrap();
            let got = idx.nn(&q).unwrap().unwrap();
            // Positions may differ only on exact distance ties.
            if got.pos != want.pos {
                prop_assert!((got.dist_sq - want.dist_sq).abs() <= want.dist_sq * 1e-4 + 1e-4,
                    "{}: pos {} vs {} with dists {} vs {}",
                    engine.name(), got.pos, want.pos, got.dist_sq, want.dist_sq);
            } else {
                prop_assert!((got.dist_sq - want.dist_sq).abs() <= want.dist_sq * 1e-4 + 1e-4);
            }
        }
    }

    #[test]
    fn messi_dtw_equals_brute_force((len, flat, mut q) in collection(), band in 0usize..8) {
        let data = normalize(len, flat);
        dsidx::series::znorm::znormalize(&mut q);
        let want = brute_force_dtw(&data, &q, band).unwrap();
        let opts = Options::default()
            .with_threads(2)
            .with_leaf_capacity(10)
            .with_segments(8.min(len));
        let idx = MemoryIndex::build(data, Engine::Messi, &opts).unwrap();
        let got = idx.nn_dtw(&q, band).unwrap().unwrap();
        prop_assert!((got.dist_sq - want.dist_sq).abs() <= want.dist_sq * 1e-4 + 1e-4,
            "dtw dist mismatch: {} vs {}", got.dist_sq, want.dist_sq);
    }

    #[test]
    fn batch_results_are_independent_of_batch_order(
        (len, flat, q0) in collection(),
        more in prop::collection::vec(-10.0f32..10.0, 3 * 64),
        k in 1usize..6,
        leaf in 1usize..20,
    ) {
        // Four queries, answered as a batch in two different orders: each
        // query's answer must depend only on the query, never on its
        // batch-mates or its position in the batch.
        let data = normalize(len, flat);
        let mut queries: Vec<Vec<f32>> = vec![q0];
        for i in 0..3 {
            queries.push(more[i * len..(i + 1) * len].to_vec());
        }
        for q in &mut queries {
            dsidx::series::znorm::znormalize(q);
        }
        let opts = Options::default()
            .with_threads(3)
            .with_leaf_capacity(leaf)
            .with_segments(8.min(len));
        let forward: Vec<&[f32]> = queries.iter().map(Vec::as_slice).collect();
        let reversed: Vec<&[f32]> = queries.iter().rev().map(Vec::as_slice).collect();
        for engine in Engine::ALL {
            let idx = MemoryIndex::build(data.clone(), engine, &opts).unwrap();
            let got_fwd = idx.knn_batch(&forward, k).unwrap();
            let got_rev = idx.knn_batch(&reversed, k).unwrap();
            let solo: Vec<_> = forward.iter().map(|q| idx.knn(q, k).unwrap()).collect();
            for qi in 0..forward.len() {
                let fwd_pos: Vec<u32> = got_fwd[qi].iter().map(|m| m.pos).collect();
                let rev_pos: Vec<u32> =
                    got_rev[forward.len() - 1 - qi].iter().map(|m| m.pos).collect();
                let solo_pos: Vec<u32> = solo[qi].iter().map(|m| m.pos).collect();
                prop_assert_eq!(&fwd_pos, &rev_pos,
                    "{} q{} k={}: batch order changed the answer", engine.name(), qi, k);
                prop_assert_eq!(&fwd_pos, &solo_pos,
                    "{} q{} k={}: batching changed the answer", engine.name(), qi, k);
            }
        }
    }

    #[test]
    fn index_structure_is_valid_for_any_input((len, flat, _q) in collection(), leaf in 1usize..20) {
        let data = normalize(len, flat);
        let opts = Options::default()
            .with_threads(2)
            .with_leaf_capacity(leaf)
            .with_segments(8.min(len));
        let tree = opts.tree_config(len).unwrap();
        let (ads, _) = dsidx::ads::build_from_dataset(&data, &tree);
        dsidx::tree::stats::validate(&ads.index);
        let stats = dsidx::tree::stats::index_stats(&ads.index);
        prop_assert_eq!(stats.entry_count, data.len());
    }
}
