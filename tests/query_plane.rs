//! The query-plane equivalence suite: every legacy facade method must
//! return **bit-identical** results to its `QuerySpec` spelling, on every
//! engine, in memory and on disk — the contract that lets the deprecated
//! matrix be thin wrappers over `Search::search`. Plus the fidelity
//! properties: approximate answers never report a distance below the
//! exact answer at the same rank, and batched DTW equals sequential DTW
//! element-wise.
#![allow(deprecated)] // the legacy spellings are the subject under test

use dsidx::prelude::*;
use proptest::prelude::*;
use std::sync::Arc;

fn opts(threads: usize, leaf: usize) -> Options {
    Options::default()
        .with_threads(threads)
        .with_leaf_capacity(leaf)
}

/// Bit-identical comparison: positions AND distance bit patterns.
fn assert_bit_identical(old: &[Match], new: &[Match], label: &str) {
    assert_eq!(old.len(), new.len(), "{label}: lengths differ");
    for (o, n) in old.iter().zip(new) {
        assert_eq!(o.pos, n.pos, "{label}: positions differ");
        assert_eq!(
            o.dist_sq.to_bits(),
            n.dist_sq.to_bits(),
            "{label}: distance bits differ at pos {}",
            o.pos
        );
    }
}

#[test]
fn memory_legacy_matrix_equals_queryspec_spelling() {
    let data = DatasetKind::Synthetic.generate(350, 64, 4071);
    let qs = DatasetKind::Synthetic.queries(4, 64, 4071);
    let qrefs: Vec<&[f32]> = qs.iter().collect();
    let (band, k) = (4usize, 5usize);
    for engine in Engine::ALL {
        let idx = MemoryIndex::build(data.clone(), engine, &opts(3, 16)).unwrap();
        let name = engine.name();
        let q = qrefs[0];

        // nn == search(nn spec).
        let old = idx.nn(q).unwrap();
        let new = idx.search(&[q], &QuerySpec::nn()).unwrap().into_nn();
        assert_eq!(old.map(|m| m.pos), new.map(|m| m.pos), "{name} nn");

        // nn_with_stats == search(nn spec + stats).
        let (old_m, _) = idx.nn_with_stats(q).unwrap().unwrap();
        let answers = idx.search(&[q], &QuerySpec::nn().with_stats()).unwrap();
        assert!(answers.stats().is_some());
        assert_bit_identical(
            &[old_m],
            &[*answers.best(0).unwrap()],
            &format!("{name} nn_with_stats"),
        );

        // knn / knn_with_stats == search(knn spec).
        let old = idx.knn(q, k).unwrap();
        let new = idx.search(&[q], &QuerySpec::knn(k)).unwrap().into_single();
        assert_bit_identical(&old, &new, &format!("{name} knn"));
        let (old, _) = idx.knn_with_stats(q, k).unwrap();
        let (new, _) = idx
            .search(&[q], &QuerySpec::knn(k).with_stats())
            .unwrap()
            .into_single_with_stats();
        assert_bit_identical(&old, &new, &format!("{name} knn_with_stats"));

        // nn_batch / knn_batch / knn_batch_with_stats == batched search.
        let old = idx.nn_batch(&qrefs).unwrap();
        let new = idx.search(&qrefs, &QuerySpec::nn()).unwrap();
        for (qi, o) in old.iter().enumerate() {
            assert_eq!(
                o.map(|m| m.pos),
                new.best(qi).map(|m| m.pos),
                "{name} nn_batch q{qi}"
            );
        }
        let old = idx.knn_batch(&qrefs, k).unwrap();
        let new = idx
            .search(&qrefs, &QuerySpec::knn(k))
            .unwrap()
            .into_matches();
        for (qi, (o, n)) in old.iter().zip(&new).enumerate() {
            assert_bit_identical(o, n, &format!("{name} knn_batch q{qi}"));
        }
        let (old, old_stats) = idx.knn_batch_with_stats(&qrefs, k).unwrap();
        let (new, new_stats) = idx
            .search(&qrefs, &QuerySpec::knn(k).with_stats())
            .unwrap()
            .into_parts_with_stats();
        for (qi, (o, n)) in old.iter().zip(&new).enumerate() {
            assert_bit_identical(o, n, &format!("{name} knn_batch_with_stats q{qi}"));
        }
        assert_eq!(old_stats.broadcasts, new_stats.broadcasts, "{name}");

        // The DTW column: nn_dtw / knn_dtw (+ stats) == measure(Dtw).
        let dtw = |spec: QuerySpec| spec.measure(Measure::Dtw { band });
        let old = idx.nn_dtw(q, band).unwrap();
        let new = idx.search(&[q], &dtw(QuerySpec::nn())).unwrap().into_nn();
        assert_eq!(old.map(|m| m.pos), new.map(|m| m.pos), "{name} nn_dtw");
        let (old_m, _) = idx.nn_dtw_with_stats(q, band).unwrap().unwrap();
        let new = idx
            .search(&[q], &dtw(QuerySpec::nn()).with_stats())
            .unwrap();
        assert_bit_identical(
            &[old_m],
            &[*new.best(0).unwrap()],
            &format!("{name} nn_dtw_with_stats"),
        );
        let old = idx.knn_dtw(q, band, k).unwrap();
        let new = idx
            .search(&[q], &dtw(QuerySpec::knn(k)))
            .unwrap()
            .into_single();
        assert_bit_identical(&old, &new, &format!("{name} knn_dtw"));
        let (old, _) = idx.knn_dtw_with_stats(q, band, k).unwrap();
        let (new, _) = idx
            .search(&[q], &dtw(QuerySpec::knn(k)).with_stats())
            .unwrap()
            .into_single_with_stats();
        assert_bit_identical(&old, &new, &format!("{name} knn_dtw_with_stats"));
    }
}

#[test]
fn disk_legacy_matrix_equals_queryspec_spelling() {
    let dir = std::env::temp_dir().join(format!("dsidx-plane-{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    let data = DatasetKind::Seismic.generate(250, 64, 17);
    let path = dir.join("plane.dsidx");
    dsidx::storage::write_dataset(&path, &data, Arc::new(Device::unthrottled())).unwrap();
    let qs = DatasetKind::Seismic.queries(3, 64, 17);
    let qrefs: Vec<&[f32]> = qs.iter().collect();
    let k = 7usize;
    for engine in Engine::ALL {
        let idx = DiskIndex::build(
            &path,
            &dir,
            engine,
            &opts(3, 16),
            DeviceProfile::UNTHROTTLED,
        )
        .unwrap();
        let name = engine.name();
        let q = qrefs[0];

        let old = idx.nn(q).unwrap();
        let new = idx.search(&[q], &QuerySpec::nn()).unwrap().into_nn();
        assert_eq!(old.map(|m| m.pos), new.map(|m| m.pos), "{name} nn");
        let (old_m, _) = idx.nn_with_stats(q).unwrap().unwrap();
        assert_eq!(
            old_m.pos,
            idx.search(&[q], &QuerySpec::nn().with_stats())
                .unwrap()
                .best(0)
                .unwrap()
                .pos,
            "{name} nn_with_stats"
        );
        let old = idx.knn(q, k).unwrap();
        let new = idx.search(&[q], &QuerySpec::knn(k)).unwrap().into_single();
        assert_bit_identical(&old, &new, &format!("{name} knn"));
        let (old, _) = idx.knn_with_stats(q, k).unwrap();
        let (new, _) = idx
            .search(&[q], &QuerySpec::knn(k).with_stats())
            .unwrap()
            .into_single_with_stats();
        assert_bit_identical(&old, &new, &format!("{name} knn_with_stats"));
        let old = idx.knn_batch(&qrefs, k).unwrap();
        let new = idx
            .search(&qrefs, &QuerySpec::knn(k))
            .unwrap()
            .into_matches();
        for (qi, (o, n)) in old.iter().zip(&new).enumerate() {
            assert_bit_identical(o, n, &format!("{name} knn_batch q{qi}"));
        }
        let old = idx.nn_batch(&qrefs).unwrap();
        let new = idx.search(&qrefs, &QuerySpec::nn()).unwrap();
        for (qi, o) in old.iter().enumerate() {
            assert_eq!(
                o.map(|m| m.pos),
                new.best(qi).map(|m| m.pos),
                "{name} nn_batch q{qi}"
            );
        }
    }
}

#[test]
fn disk_query_plane_has_no_unsupported_cells() {
    // Every engine x fidelity x measure combination answers on DiskIndex —
    // the cell that used to report Unsupported (exact DTW) included.
    let dir = std::env::temp_dir().join(format!("dsidx-plane-full-{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    let data = DatasetKind::Synthetic.generate(200, 64, 23);
    let path = dir.join("full.dsidx");
    dsidx::storage::write_dataset(&path, &data, Arc::new(Device::unthrottled())).unwrap();
    let qs = DatasetKind::Synthetic.queries(2, 64, 23);
    let qrefs: Vec<&[f32]> = qs.iter().collect();
    for engine in Engine::ALL {
        let idx = DiskIndex::build(
            &path,
            &dir,
            engine,
            &opts(2, 16),
            DeviceProfile::UNTHROTTLED,
        )
        .unwrap();
        for fidelity in [Fidelity::Exact, Fidelity::Approximate] {
            for measure in [Measure::Euclidean, Measure::Dtw { band: 4 }] {
                let spec = QuerySpec::knn(3).measure(measure).fidelity(fidelity);
                let answers = idx
                    .search(&qrefs, &spec)
                    .unwrap_or_else(|e| panic!("{} {fidelity:?} {measure:?}: {e}", engine.name()));
                assert!(
                    answers.matches().iter().all(|m| !m.is_empty()),
                    "{} {fidelity:?} {measure:?}: empty answer on non-empty data",
                    engine.name()
                );
            }
        }
    }
}

#[test]
fn legacy_empty_batches_keep_their_contract() {
    // The query plane rejects empty batches (InvalidSpec::EmptyBatch);
    // the legacy wrappers keep returning empty collections.
    let data = DatasetKind::Synthetic.generate(60, 64, 3);
    for engine in Engine::ALL {
        let idx = MemoryIndex::build(data.clone(), engine, &opts(2, 10)).unwrap();
        assert!(idx.nn_batch(&[]).unwrap().is_empty());
        assert!(idx.knn_batch(&[], 3).unwrap().is_empty());
        let (m, stats) = idx.knn_batch_with_stats(&[], 3).unwrap();
        assert!(m.is_empty());
        assert_eq!(stats, BatchStats::default());
        assert!(matches!(
            idx.search(&[], &QuerySpec::nn()),
            Err(Error::InvalidSpec(InvalidSpec::EmptyBatch))
        ));
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Approximate answers never report a distance below the exact answer
    /// at the same rank — on any engine, any measure, any (small) data.
    #[test]
    fn approximate_is_always_at_least_the_exact_distance(
        flat in prop::collection::vec(-10.0f32..10.0, 40 * 32),
        mut q in prop::collection::vec(-10.0f32..10.0, 32),
        k in 1usize..8,
        band in 0usize..6,
        leaf in 2usize..20,
    ) {
        let mut data = Dataset::from_flat(flat, 32).unwrap();
        data.znormalize_all();
        dsidx::series::znorm::znormalize(&mut q);
        let opts = Options::default()
            .with_threads(2)
            .with_leaf_capacity(leaf)
            .with_segments(8);
        let qs: Vec<&[f32]> = vec![&q];
        for engine in Engine::ALL {
            let idx = MemoryIndex::build(data.clone(), engine, &opts).unwrap();
            for measure in [Measure::Euclidean, Measure::Dtw { band }] {
                let exact = idx
                    .search(&qs, &QuerySpec::knn(k).measure(measure))
                    .unwrap();
                let approx = idx
                    .search(
                        &qs,
                        &QuerySpec::knn(k).measure(measure).fidelity(Fidelity::Approximate),
                    )
                    .unwrap();
                prop_assert!(!approx.matches()[0].is_empty());
                for (a, e) in approx.matches()[0].iter().zip(&exact.matches()[0]) {
                    prop_assert!(
                        a.dist_sq >= e.dist_sq - e.dist_sq * 1e-5 - 1e-6,
                        "{} {measure:?} k={k}: approximate {} below exact {}",
                        engine.name(), a.dist_sq, e.dist_sq
                    );
                }
            }
        }
    }

    /// Exact DTW answered from a `DiskIndex` equals the brute-force DTW
    /// oracle over the same data — the correctness contract of the
    /// newly-closed cell (MESSI's generic cascade on its own tree, the
    /// batched UCR-DTW scan over the file for ADS+/ParIS).
    #[test]
    fn exact_dtw_on_disk_matches_brute_force(
        flat in prop::collection::vec(-10.0f32..10.0, 35 * 32),
        mut q in prop::collection::vec(-10.0f32..10.0, 32),
        k in 1usize..6,
        band in 0usize..6,
        leaf in 2usize..16,
        engine_sel in 0usize..4,
    ) {
        static SEQ: std::sync::atomic::AtomicU32 = std::sync::atomic::AtomicU32::new(0);
        let mut data = Dataset::from_flat(flat, 32).unwrap();
        data.znormalize_all();
        dsidx::series::znorm::znormalize(&mut q);
        let dir = std::env::temp_dir()
            .join(format!("dsidx-plane-prop-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        // Cases run concurrently across tests in this binary, so the file
        // name must be unique per case, not per process.
        let seq = SEQ.fetch_add(1, std::sync::atomic::Ordering::Relaxed);
        let path = dir.join(format!("case-{seq}.dsidx"));
        dsidx::storage::write_dataset(&path, &data, Arc::new(Device::unthrottled())).unwrap();
        let engine = Engine::ALL[engine_sel];
        let opts = Options::default()
            .with_threads(2)
            .with_leaf_capacity(leaf)
            .with_segments(8);
        let idx = DiskIndex::build(&path, &dir, engine, &opts, DeviceProfile::UNTHROTTLED)
            .unwrap();
        let qs: Vec<&[f32]> = vec![&q];
        let got = idx
            .search(&qs, &QuerySpec::knn(k).measure(Measure::Dtw { band }))
            .unwrap()
            .into_single();
        let want = dsidx::ucr::brute_force_dtw_knn(&data, &q, band, k);
        std::fs::remove_file(&path).ok();
        prop_assert_eq!(got.len(), want.len());
        for (g, w) in got.iter().zip(&want) {
            prop_assert_eq!(g.pos, w.pos,
                "{} band={} k={}: disk DTW diverged from oracle", engine.name(), band, k);
            prop_assert!((g.dist_sq - w.dist_sq).abs() <= w.dist_sq * 1e-4 + 1e-4);
        }
    }

    /// Batched DTW equals sequential DTW element-wise — on every memory
    /// engine (MESSI's one-broadcast cascade and the UCR batch fallback).
    #[test]
    fn batched_dtw_equals_sequential_dtw(
        flat in prop::collection::vec(-10.0f32..10.0, 30 * 32),
        more in prop::collection::vec(-10.0f32..10.0, 3 * 32),
        k in 1usize..6,
        band in 0usize..6,
        leaf in 2usize..16,
    ) {
        let mut data = Dataset::from_flat(flat, 32).unwrap();
        data.znormalize_all();
        let mut queries: Vec<Vec<f32>> = more.chunks(32).map(<[f32]>::to_vec).collect();
        for q in &mut queries {
            dsidx::series::znorm::znormalize(q);
        }
        let qrefs: Vec<&[f32]> = queries.iter().map(Vec::as_slice).collect();
        let opts = Options::default()
            .with_threads(3)
            .with_leaf_capacity(leaf)
            .with_segments(8);
        let spec = QuerySpec::knn(k).measure(Measure::Dtw { band }).with_stats();
        for engine in Engine::ALL {
            let idx = MemoryIndex::build(data.clone(), engine, &opts).unwrap();
            let batched = idx.search(&qrefs, &spec).unwrap();
            prop_assert!(batched.stats().unwrap().broadcasts <= 1,
                "{}: more than one broadcast for a DTW batch", engine.name());
            for (qi, q) in qrefs.iter().enumerate() {
                let single = idx.search(&[q], &spec).unwrap().into_single();
                let got: Vec<u32> = batched.matches()[qi].iter().map(|m| m.pos).collect();
                let want: Vec<u32> = single.iter().map(|m| m.pos).collect();
                prop_assert_eq!(&got, &want,
                    "{} q{} band={} k={}: batched DTW diverged", engine.name(), qi, band, k);
            }
        }
    }
}
