//! The §V extension end to end: one index, two distance measures.

#![allow(deprecated)] // pins the legacy wrappers; tests/query_plane.rs relates them to QuerySpec

use dsidx::prelude::*;
use dsidx::ucr::dtw::brute_force_dtw;

fn opts() -> Options {
    Options::default().with_threads(4).with_leaf_capacity(20)
}

#[test]
fn messi_dtw_matches_brute_force_on_all_families() {
    for kind in DatasetKind::ALL {
        let data = kind.generate(350, 64, 4242);
        let queries = kind.queries(4, 64, 4242);
        let idx = MemoryIndex::build(data.clone(), Engine::Messi, &opts()).unwrap();
        for band in [0usize, 3, 8] {
            for q in queries.iter() {
                let want = brute_force_dtw(&data, q, band).unwrap();
                let got = idx.nn_dtw(q, band).unwrap().unwrap();
                assert_eq!(got.pos, want.pos, "{} band={band}", kind.name());
                assert!((got.dist_sq - want.dist_sq).abs() <= want.dist_sq * 1e-4 + 1e-4);
            }
        }
    }
}

#[test]
fn non_messi_engines_fall_back_to_exact_parallel_scan() {
    let data = DatasetKind::Sald.generate(200, 64, 99);
    let queries = DatasetKind::Sald.queries(3, 64, 99);
    for engine in [Engine::Ads, Engine::Paris] {
        let idx = MemoryIndex::build(data.clone(), engine, &opts()).unwrap();
        for q in queries.iter() {
            let want = brute_force_dtw(&data, q, 5).unwrap();
            let got = idx.nn_dtw(q, 5).unwrap().unwrap();
            assert_eq!(got.pos, want.pos, "{} fallback", engine.name());
        }
    }
}

#[test]
fn dtw_recovers_time_shifted_template_that_ed_misses() {
    let data = DatasetKind::Seismic.generate(400, 128, 11);
    let idx = MemoryIndex::build(data.clone(), Engine::Messi, &opts()).unwrap();
    // A shifted replay of series 200.
    let mut q = data.get(200).to_vec();
    q.rotate_right(6);
    dsidx::series::znorm::znormalize(&mut q);
    let dtw_hit = idx.nn_dtw(&q, 10).unwrap().unwrap();
    let ed_hit = idx.nn(&q).unwrap().unwrap();
    assert_eq!(dtw_hit.pos, 200, "DTW must absorb the shift");
    assert!(
        dtw_hit.dist_sq < ed_hit.dist_sq * 0.5,
        "DTW distance {} should be far below ED {}",
        dtw_hit.dist_sq,
        ed_hit.dist_sq
    );
}

#[test]
fn dtw_band_zero_equals_euclidean_answer() {
    let data = DatasetKind::Synthetic.generate(300, 64, 17);
    let queries = DatasetKind::Synthetic.queries(4, 64, 17);
    let idx = MemoryIndex::build(data, Engine::Messi, &opts()).unwrap();
    for q in queries.iter() {
        let ed = idx.nn(q).unwrap().unwrap();
        let dtw = idx.nn_dtw(q, 0).unwrap().unwrap();
        assert_eq!(ed.pos, dtw.pos);
        assert!((ed.dist_sq - dtw.dist_sq).abs() <= ed.dist_sq * 1e-3 + 1e-3);
    }
}
