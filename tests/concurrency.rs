//! Concurrent use of shared indexes: many client threads querying one
//! index must all get exact answers, and answers must not depend on the
//! degree of concurrency.

#![allow(deprecated)] // pins the legacy wrappers; tests/query_plane.rs relates them to QuerySpec

use dsidx::prelude::*;
use dsidx::ucr::brute_force;
use std::sync::Arc;

#[test]
fn concurrent_clients_get_exact_answers() {
    let data = DatasetKind::Synthetic.generate(1000, 64, 31);
    let opts = Options::default().with_threads(4).with_leaf_capacity(25);
    // Engines whose query paths involve worker pools and shared state.
    for engine in [Engine::Paris, Engine::Messi] {
        let idx = Arc::new(MemoryIndex::build(data.clone(), engine, &opts).unwrap());
        let queries = Arc::new(DatasetKind::Synthetic.queries(12, 64, 31));
        let expected: Vec<Match> = queries
            .iter()
            .map(|q| brute_force(idx.data(), q).unwrap())
            .collect();
        std::thread::scope(|s| {
            for client in 0..6usize {
                let idx = Arc::clone(&idx);
                let queries = Arc::clone(&queries);
                let expected = expected.clone();
                s.spawn(move || {
                    // Each client starts at a different query and loops.
                    for k in 0..queries.len() {
                        let i = (client + k) % queries.len();
                        let got = idx.nn(queries.get(i)).unwrap().unwrap();
                        assert_eq!(
                            got.pos,
                            expected[i].pos,
                            "{} client {client}",
                            engine.name()
                        );
                    }
                });
            }
        });
    }
}

#[test]
fn answers_are_identical_across_thread_counts() {
    let data = DatasetKind::Sald.generate(800, 96, 5);
    let queries = DatasetKind::Sald.queries(6, 96, 5);
    let mut reference: Option<Vec<Match>> = None;
    for threads in [1usize, 2, 8, 16] {
        let opts = Options::default()
            .with_threads(threads)
            .with_leaf_capacity(25);
        let idx = MemoryIndex::build(data.clone(), Engine::Messi, &opts).unwrap();
        let answers: Vec<Match> = queries
            .iter()
            .map(|q| idx.nn(q).unwrap().unwrap())
            .collect();
        match &reference {
            None => reference = Some(answers),
            Some(r) => assert_eq!(&answers, r, "threads={threads}"),
        }
    }
}

#[test]
fn interleaved_ed_and_dtw_queries_share_one_index() {
    let data = DatasetKind::Seismic.generate(500, 64, 23);
    let opts = Options::default().with_threads(4).with_leaf_capacity(20);
    let idx = Arc::new(MemoryIndex::build(data, Engine::Messi, &opts).unwrap());
    let queries = Arc::new(DatasetKind::Seismic.queries(8, 64, 23));
    std::thread::scope(|s| {
        for client in 0..4usize {
            let idx = Arc::clone(&idx);
            let queries = Arc::clone(&queries);
            s.spawn(move || {
                for i in 0..queries.len() {
                    let q = queries.get(i);
                    if (client + i) % 2 == 0 {
                        let _ = idx.nn(q).unwrap().unwrap();
                    } else {
                        let _ = idx.nn_dtw(q, 4).unwrap().unwrap();
                    }
                }
            });
        }
    });
}
