//! Cross-engine batched queries: `knn_batch(queries, k)` must be
//! element-wise identical to sequentially calling `knn(q, k)` — same
//! positions, same (deterministic, lowest-position tie-broken) ordering —
//! on every engine, memory and disk, including datasets salted with exact
//! duplicates where top-k boundaries cut through tie groups. The batch
//! path shares one schedule across all queries, so this is the statement
//! that sharing never changes an answer.

#![allow(deprecated)] // pins the legacy wrappers; tests/query_plane.rs relates them to QuerySpec

use dsidx::prelude::*;
use std::sync::Arc;

fn opts(threads: usize, leaf: usize) -> Options {
    Options::default()
        .with_threads(threads)
        .with_leaf_capacity(leaf)
}

/// A dataset with planted duplicate groups: the base collection plus
/// several exact copies of a handful of its members (see `tests/knn.rs`).
fn mixed_duplicates(kind: DatasetKind, base: usize, len: usize, seed: u64) -> Dataset {
    let mut data = kind.generate(base, len, seed);
    for (member, copies) in [(0usize, 3usize), (base / 2, 4), (base - 1, 2)] {
        let series = data.get(member).to_vec();
        for _ in 0..copies {
            data.push(&series).unwrap();
        }
    }
    data
}

fn assert_batch_equals_sequential(idx: &MemoryIndex, qs: &Dataset, k: usize) {
    let qrefs: Vec<&[f32]> = qs.iter().collect();
    let batched = idx.knn_batch(&qrefs, k).unwrap();
    assert_eq!(batched.len(), qrefs.len());
    for (qi, q) in qs.iter().enumerate() {
        let single = idx.knn(q, k).unwrap();
        assert_eq!(
            batched[qi].iter().map(|m| m.pos).collect::<Vec<_>>(),
            single.iter().map(|m| m.pos).collect::<Vec<_>>(),
            "{} q{qi} k={k}",
            idx.engine().name()
        );
        for (b, s) in batched[qi].iter().zip(&single) {
            assert!(
                (b.dist_sq - s.dist_sq).abs() <= s.dist_sq * 1e-4 + 1e-4,
                "{} q{qi} k={k} pos {}",
                idx.engine().name(),
                b.pos
            );
        }
    }
}

#[test]
fn knn_batch_equals_sequential_on_mixed_duplicate_datasets() {
    for kind in DatasetKind::ALL {
        let data = mixed_duplicates(kind, 350, 64, 2025);
        let qs = kind.queries(7, 64, 2025);
        for engine in Engine::ALL {
            let idx = MemoryIndex::build(data.clone(), engine, &opts(4, 16)).unwrap();
            for k in [1usize, 6, 23, 100] {
                assert_batch_equals_sequential(&idx, &qs, k);
            }
        }
    }
}

#[test]
fn knn_batch_equals_sequential_on_disk_engines() {
    let dir = std::env::temp_dir().join(format!("dsidx-batch-{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    let data = mixed_duplicates(DatasetKind::Seismic, 220, 64, 7);
    let path = dir.join("batch.dsidx");
    dsidx::storage::write_dataset(&path, &data, Arc::new(Device::unthrottled())).unwrap();
    let qs = DatasetKind::Seismic.queries(5, 64, 7);
    let qrefs: Vec<&[f32]> = qs.iter().collect();
    for engine in [Engine::Ads, Engine::Paris, Engine::ParisPlus] {
        let idx = DiskIndex::build(
            &path,
            &dir,
            engine,
            &opts(4, 20),
            DeviceProfile::UNTHROTTLED,
        )
        .unwrap();
        for k in [1usize, 9, 40] {
            let batched = idx.knn_batch(&qrefs, k).unwrap();
            for (qi, q) in qs.iter().enumerate() {
                let single = idx.knn(q, k).unwrap();
                assert_eq!(
                    batched[qi].iter().map(|m| m.pos).collect::<Vec<_>>(),
                    single.iter().map(|m| m.pos).collect::<Vec<_>>(),
                    "{} q{qi} k={k}",
                    engine.name()
                );
            }
        }
        // And the batch shares the broadcast budget on disk too.
        let (_, stats) = idx.knn_batch_with_stats(&qrefs, 5).unwrap();
        assert!(stats.broadcasts_per_query() < 1.0, "{}", engine.name());
        assert!(stats.series_requests >= stats.series_fetched);
    }
}

#[test]
fn batch_boundary_inside_a_duplicate_group_keeps_lowest_positions() {
    // 30 base series plus 6 exact copies of member 7 (cf. tests/knn.rs):
    // batching queries — including the tie-heavy one — must keep the
    // per-query answers at the group's lowest positions, whatever the
    // thread interleaving of the shared schedule.
    let base = DatasetKind::Synthetic.generate(30, 64, 77);
    let mut data = base.clone();
    for _ in 0..6 {
        data.push(base.get(7)).unwrap();
    }
    let extra = DatasetKind::Synthetic.queries(3, 64, 78);
    let mut qrefs: Vec<&[f32]> = vec![base.get(7)];
    qrefs.extend(extra.iter());
    for engine in Engine::ALL {
        let idx = MemoryIndex::build(data.clone(), engine, &opts(8, 5)).unwrap();
        for k in [1usize, 3, 7] {
            for _ in 0..3 {
                let batched = idx.knn_batch(&qrefs, k).unwrap();
                for (qi, q) in qrefs.iter().enumerate() {
                    let want = dsidx::ucr::brute_force_knn(&data, q, k);
                    assert_eq!(
                        batched[qi].iter().map(|m| m.pos).collect::<Vec<_>>(),
                        want.iter().map(|m| m.pos).collect::<Vec<_>>(),
                        "{} q{qi} k={k}",
                        engine.name()
                    );
                }
            }
        }
    }
}

#[test]
fn nn_batch_matches_nn_and_handles_empty_inputs() {
    let data = mixed_duplicates(DatasetKind::Sald, 100, 64, 13);
    let qs = DatasetKind::Sald.queries(4, 64, 13);
    let qrefs: Vec<&[f32]> = qs.iter().collect();
    for engine in Engine::ALL {
        let idx = MemoryIndex::build(data.clone(), engine, &opts(3, 10)).unwrap();
        let nns = idx.nn_batch(&qrefs).unwrap();
        for (qi, q) in qs.iter().enumerate() {
            assert_eq!(nns[qi], idx.nn(q).unwrap(), "{} q{qi}", engine.name());
        }
        // A batch of zero queries is a no-op, not an error.
        assert!(idx.knn_batch(&[], 3).unwrap().is_empty());
        assert!(idx.nn_batch(&[]).unwrap().is_empty());
    }
    // Batches over an empty collection answer every query with nothing.
    let empty = Dataset::new(64).unwrap();
    for engine in Engine::ALL {
        let idx = MemoryIndex::build(empty.clone(), engine, &opts(2, 10)).unwrap();
        let answers = idx.knn_batch(&qrefs, 5).unwrap();
        assert_eq!(answers.len(), qrefs.len(), "{}", engine.name());
        assert!(answers.iter().all(Vec::is_empty), "{}", engine.name());
        let nns = idx.nn_batch(&qrefs).unwrap();
        assert!(nns.iter().all(Option::is_none), "{}", engine.name());
    }
}

#[test]
fn batch_stats_report_the_amortization() {
    let data = DatasetKind::Synthetic.generate(400, 64, 91);
    let qs = DatasetKind::Synthetic.queries(8, 64, 91);
    let qrefs: Vec<&[f32]> = qs.iter().collect();
    for engine in Engine::ALL {
        let idx = MemoryIndex::build(data.clone(), engine, &opts(4, 16)).unwrap();
        let (_, stats) = idx.knn_batch_with_stats(&qrefs, 5).unwrap();
        assert_eq!(stats.per_query.len(), 8, "{}", engine.name());
        // The acceptance bar: under one broadcast per query at B >= 4.
        assert!(
            stats.broadcasts_per_query() < 1.0,
            "{}: {} broadcasts / {} queries",
            engine.name(),
            stats.broadcasts,
            stats.per_query.len()
        );
        // Shared fetches serve at least as many per-query requests.
        assert!(
            stats.series_requests >= stats.series_fetched,
            "{}",
            engine.name()
        );
        // Every query did real work and the totals compose.
        for (qi, q) in stats.per_query.iter().enumerate() {
            assert!(q.real_computed > 0, "{} q{qi}", engine.name());
        }
        assert!(stats.total().real_computed >= stats.per_query.len() as u64);
    }
}
