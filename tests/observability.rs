//! The observability plane end to end, through the public facade: a real
//! search must (a) emit schema-valid JSON-lines trace events when the
//! stream is routed at a file, (b) surface a wall-time phase breakdown
//! through `Answers`, (c) publish metrics that round-trip both exporters,
//! and (d) degrade to all-zero breakdowns (not errors) when the plane is
//! switched off.
//!
//! The trace stream and the enablement flag are process-global, so every
//! section lives in this one serialized test (the test binary runs tests
//! in threads; two tests flipping global observability state would race).

use dsidx::obs;
use dsidx::obs::phase::Phase;
use dsidx::prelude::*;

/// Minimal JSON-lines schema check for one trace event: a flat object,
/// `ts_us` first (a number), `event` second (a string), then any number
/// of `"key":value` fields with balanced quoting.
fn assert_trace_line_schema(line: &str) {
    let rest = line
        .strip_prefix("{\"ts_us\":")
        .unwrap_or_else(|| panic!("no ts_us prefix: {line}"));
    let (ts, rest) = rest.split_once(',').expect("fields after ts_us");
    assert!(
        !ts.is_empty() && ts.bytes().all(|b| b.is_ascii_digit()),
        "ts_us is not a number: {line}"
    );
    assert!(
        rest.starts_with("\"event\":\""),
        "second field is not the event kind: {line}"
    );
    assert!(rest.ends_with('}'), "unterminated object: {line}");
    // Quotes come in pairs in every emitted line (keys and string values
    // are escaped, so a raw `"` never appears inside one).
    let quotes = line.matches('"').count();
    assert_eq!(quotes % 2, 0, "unbalanced quoting: {line}");
}

#[test]
fn observability_plane_end_to_end() {
    let data = DatasetKind::Synthetic.generate(400, 64, 17);
    let queries = DatasetKind::Synthetic.queries(3, 64, 17);
    let qrefs: Vec<&[f32]> = queries.iter().collect();
    let opts = Options::default().with_threads(2).with_leaf_capacity(16);
    let spec = QuerySpec::knn(3).with_stats();

    // (a) Trace: route the stream at a file, search every engine, and
    // validate each emitted line against the JSON-lines schema.
    let dir = std::env::temp_dir().join(format!("dsidx-obs-it-{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    let trace_path = dir.join("trace.jsonl");
    let _ = std::fs::remove_file(&trace_path);
    obs::set_enabled(true);
    obs::trace::route_to_file(&trace_path).unwrap();
    for engine in Engine::ALL {
        let idx = MemoryIndex::build(data.clone(), engine, &opts).unwrap();
        let answers = idx.search(&qrefs, &spec).unwrap();
        assert_eq!(answers.len(), qrefs.len());
    }
    obs::trace::disable();
    let text = std::fs::read_to_string(&trace_path).unwrap();
    let lines: Vec<&str> = text.lines().collect();
    assert!(!lines.is_empty(), "no trace events from four searches");
    for line in &lines {
        assert_trace_line_schema(line);
    }
    // One `search` event per engine, each carrying the request shape.
    let searches: Vec<&&str> = lines
        .iter()
        .filter(|l| l.contains("\"event\":\"search\""))
        .collect();
    assert_eq!(searches.len(), Engine::ALL.len());
    for l in &searches {
        assert!(l.contains("\"queries\":3") && l.contains("\"k\":3"), "{l}");
        assert!(l.contains("\"measure\":\"euclidean\""), "{l}");
    }
    // The parallel engines broadcast under tracing, so pool events appear.
    assert!(
        lines.iter().any(|l| l.contains("\"event\":\"broadcast\"")),
        "no broadcast events from the pool engines"
    );

    // (b) Phases: the breakdown comes back through `Answers` and lands in
    // the engine's own phases.
    let messi = MemoryIndex::build(data.clone(), Engine::Messi, &opts).unwrap();
    let answers = messi.search(&qrefs, &spec).unwrap();
    let phase = answers.phase_breakdown().expect("stats requested");
    assert!(phase.total_nanos() > 0, "empty breakdown with obs on");
    assert!(
        phase.nanos(Phase::Traversal) > 0,
        "MESSI answers through the traversal phase"
    );
    // The breakdown is the batch total: shared plus every query's own.
    let stats = answers.stats().unwrap();
    assert_eq!(phase, stats.total().phase);

    // (c) Metrics: the searches above touched the pool, so the registry
    // round-trips non-empty through both exporters.
    let prom = obs::registry::prometheus_text();
    let json = obs::registry::json_snapshot();
    assert!(prom.contains("dsidx_pool_broadcasts_total"), "{prom}");
    assert!(json.contains("\"dsidx_pool_broadcasts_total\""), "{json}");

    // (d) Switched off, searching still answers and the breakdown is all
    // zeros (the documented degraded mode, not an error).
    obs::set_enabled(false);
    let answers = messi.search(&qrefs, &spec).unwrap();
    assert_eq!(answers.len(), qrefs.len());
    let phase = answers.phase_breakdown().expect("stats requested");
    assert!(phase.is_zero(), "phases recorded while disabled: {phase:?}");
    obs::set_enabled(true);

    let _ = std::fs::remove_dir_all(&dir);
}
