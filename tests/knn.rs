//! Cross-engine exact k-NN: for every engine (in-memory and on-disk where
//! supported), `knn(q, k)` must equal the brute-force k smallest distances
//! — sorted ascending, with the deterministic lowest-position tie-break —
//! including on datasets salted with exact duplicates, where the k-th
//! boundary routinely falls inside a group of equal distances.

#![allow(deprecated)] // pins the legacy wrappers; tests/query_plane.rs relates them to QuerySpec

use dsidx::prelude::*;
use dsidx::ucr::brute_force_knn;
use std::sync::Arc;

fn opts(threads: usize, leaf: usize) -> Options {
    Options::default()
        .with_threads(threads)
        .with_leaf_capacity(leaf)
}

/// A dataset with planted duplicate groups: the base collection plus
/// several exact copies of a handful of its members. Groups of identical
/// series share one distance to any query, so top-k boundaries cut through
/// ties.
fn mixed_duplicates(kind: DatasetKind, base: usize, len: usize, seed: u64) -> Dataset {
    let mut data = kind.generate(base, len, seed);
    for (member, copies) in [(0usize, 3usize), (base / 2, 4), (base - 1, 2)] {
        let series = data.get(member).to_vec();
        for _ in 0..copies {
            data.push(&series).unwrap();
        }
    }
    data
}

#[test]
fn knn_equals_brute_force_on_mixed_duplicate_datasets() {
    for kind in DatasetKind::ALL {
        let data = mixed_duplicates(kind, 400, 64, 2024);
        let queries = kind.queries(4, 64, 2024);
        let indexes: Vec<MemoryIndex> = Engine::ALL
            .iter()
            .map(|&e| MemoryIndex::build(data.clone(), e, &opts(4, 16)).unwrap())
            .collect();
        for q in queries.iter() {
            for k in [1usize, 5, 23, 100] {
                let want = brute_force_knn(&data, q, k);
                for idx in &indexes {
                    let got = idx.knn(q, k).unwrap();
                    assert_eq!(
                        got.iter().map(|m| m.pos).collect::<Vec<_>>(),
                        want.iter().map(|m| m.pos).collect::<Vec<_>>(),
                        "{} on {} k={k}",
                        idx.engine().name(),
                        kind.name()
                    );
                    for (g, w) in got.iter().zip(&want) {
                        assert!(
                            (g.dist_sq - w.dist_sq).abs() <= w.dist_sq * 1e-4 + 1e-4,
                            "{} distance mismatch at pos {}",
                            idx.engine().name(),
                            g.pos
                        );
                    }
                }
            }
        }
    }
}

#[test]
fn knn_boundary_inside_a_duplicate_group_keeps_lowest_positions() {
    // 30 base series plus 6 exact copies of member 7: querying with member
    // 7 itself makes positions {7, 30..36} an exact-tie group at distance
    // 0. Any k cutting inside the group must keep its lowest positions —
    // on every engine, whatever the thread interleaving.
    let base = DatasetKind::Synthetic.generate(30, 64, 77);
    let mut data = base.clone();
    for _ in 0..6 {
        data.push(base.get(7)).unwrap();
    }
    let q = base.get(7);
    for engine in Engine::ALL {
        let idx = MemoryIndex::build(data.clone(), engine, &opts(8, 5)).unwrap();
        for k in [1usize, 3, 7] {
            for _ in 0..3 {
                let got = idx.knn(q, k).unwrap();
                let want = brute_force_knn(&data, q, k);
                assert_eq!(
                    got.iter().map(|m| m.pos).collect::<Vec<_>>(),
                    want.iter().map(|m| m.pos).collect::<Vec<_>>(),
                    "{} k={k}",
                    engine.name()
                );
            }
        }
    }
}

#[test]
fn knn_at_k1_matches_nn_everywhere() {
    for kind in DatasetKind::ALL {
        let data = mixed_duplicates(kind, 300, 64, 9);
        let queries = kind.queries(5, 64, 9);
        for engine in Engine::ALL {
            let idx = MemoryIndex::build(data.clone(), engine, &opts(4, 20)).unwrap();
            for q in queries.iter() {
                let nn = idx.nn(q).unwrap().unwrap();
                let knn = idx.knn(q, 1).unwrap();
                assert_eq!(knn.len(), 1);
                assert_eq!(knn[0], nn, "{} on {}", engine.name(), kind.name());
            }
        }
    }
}

#[test]
fn knn_larger_than_the_collection_returns_everything_sorted() {
    let data = mixed_duplicates(DatasetKind::Sald, 60, 64, 31);
    let n = data.len();
    let q = DatasetKind::Sald.queries(1, 64, 31);
    for engine in Engine::ALL {
        let idx = MemoryIndex::build(data.clone(), engine, &opts(3, 10)).unwrap();
        let got = idx.knn(q.get(0), n + 50).unwrap();
        let want = brute_force_knn(&data, q.get(0), n + 50);
        assert_eq!(got.len(), n, "{}", engine.name());
        assert_eq!(
            got.iter().map(|m| m.pos).collect::<Vec<_>>(),
            want.iter().map(|m| m.pos).collect::<Vec<_>>(),
            "{}",
            engine.name()
        );
        // Sorted ascending by (distance, position).
        for w in got.windows(2) {
            assert!(
                w[0].dist_sq < w[1].dist_sq
                    || (w[0].dist_sq == w[1].dist_sq && w[0].pos < w[1].pos),
                "{} not sorted",
                engine.name()
            );
        }
    }
}

#[test]
fn knn_on_disk_engines_matches_brute_force() {
    let dir = std::env::temp_dir().join(format!("dsidx-knn-{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    let data = mixed_duplicates(DatasetKind::Seismic, 250, 64, 3);
    let path = dir.join("knn.dsidx");
    dsidx::storage::write_dataset(&path, &data, Arc::new(Device::unthrottled())).unwrap();
    let queries = DatasetKind::Seismic.queries(3, 64, 3);
    for engine in [Engine::Ads, Engine::Paris, Engine::ParisPlus] {
        let idx = DiskIndex::build(
            &path,
            &dir,
            engine,
            &opts(4, 20),
            DeviceProfile::UNTHROTTLED,
        )
        .unwrap();
        for q in queries.iter() {
            for k in [1usize, 9, 40] {
                let want = brute_force_knn(&data, q, k);
                let (got, stats) = idx.knn_with_stats(q, k).unwrap();
                assert_eq!(
                    got.iter().map(|m| m.pos).collect::<Vec<_>>(),
                    want.iter().map(|m| m.pos).collect::<Vec<_>>(),
                    "{} k={k}",
                    engine.name()
                );
                assert!(stats.real_computed >= got.len() as u64, "{}", engine.name());
            }
            // And the 1-NN special case agrees with nn on disk too.
            let nn = idx.nn(q).unwrap().unwrap();
            assert_eq!(idx.knn(q, 1).unwrap()[0], nn, "{}", engine.name());
        }
    }
}

#[test]
fn knn_on_empty_collection_is_empty() {
    let data = Dataset::new(64).unwrap();
    for engine in Engine::ALL {
        let idx = MemoryIndex::build(data.clone(), engine, &opts(2, 10)).unwrap();
        assert!(
            idx.knn(&[0.0; 64], 5).unwrap().is_empty(),
            "{}",
            engine.name()
        );
    }
}
