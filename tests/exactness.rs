//! Cross-engine exactness: every engine must return the brute-force
//! nearest neighbor on every dataset family — the index structures are
//! *exact*, pruning only with sound lower bounds.

#![allow(deprecated)] // pins the legacy wrappers; tests/query_plane.rs relates them to QuerySpec

use dsidx::prelude::*;
use dsidx::ucr::brute_force;

fn opts(threads: usize, leaf: usize) -> Options {
    Options::default()
        .with_threads(threads)
        .with_leaf_capacity(leaf)
}

#[test]
fn all_engines_agree_with_brute_force_on_all_families() {
    for kind in DatasetKind::ALL {
        let data = kind.generate(800, 96, 1234);
        let queries = kind.queries(6, 96, 1234);
        let indexes: Vec<MemoryIndex> = Engine::ALL
            .iter()
            .map(|&e| MemoryIndex::build(data.clone(), e, &opts(4, 20)).unwrap())
            .collect();
        for q in queries.iter() {
            let want = brute_force(&data, q).unwrap();
            for idx in &indexes {
                let got = idx.nn(q).unwrap().unwrap();
                assert_eq!(
                    got.pos,
                    want.pos,
                    "{} on {}",
                    idx.engine().name(),
                    kind.name()
                );
                assert!(
                    (got.dist_sq - want.dist_sq).abs() <= want.dist_sq * 1e-4 + 1e-4,
                    "{} distance mismatch",
                    idx.engine().name()
                );
            }
        }
    }
}

#[test]
fn exactness_is_robust_to_leaf_capacity_extremes() {
    let data = DatasetKind::Synthetic.generate(300, 64, 9);
    let queries = DatasetKind::Synthetic.queries(4, 64, 9);
    for leaf in [1usize, 2, 7, 1000] {
        for engine in [Engine::Ads, Engine::Messi] {
            let idx = MemoryIndex::build(data.clone(), engine, &opts(3, leaf)).unwrap();
            for q in queries.iter() {
                let want = brute_force(&data, q).unwrap();
                let got = idx.nn(q).unwrap().unwrap();
                assert_eq!(got.pos, want.pos, "{} leaf={leaf}", engine.name());
            }
        }
    }
}

#[test]
fn exactness_across_segment_counts() {
    let data = DatasetKind::Sald.generate(400, 128, 3);
    let queries = DatasetKind::Sald.queries(3, 128, 3);
    for segments in [4usize, 8, 16] {
        let o = opts(4, 25).with_segments(segments);
        let idx = MemoryIndex::build(data.clone(), Engine::Messi, &o).unwrap();
        for q in queries.iter() {
            let want = brute_force(&data, q).unwrap();
            let got = idx.nn(q).unwrap().unwrap();
            assert_eq!(got.pos, want.pos, "segments={segments}");
        }
    }
}

#[test]
fn every_indexed_series_is_its_own_nearest_neighbor() {
    let data = DatasetKind::Seismic.generate(500, 64, 77);
    for engine in Engine::ALL {
        let idx = MemoryIndex::build(data.clone(), engine, &opts(4, 30)).unwrap();
        for pos in [0usize, 250, 499] {
            let got = idx.nn(data.get(pos)).unwrap().unwrap();
            assert_eq!(got.pos as usize, pos, "{}", engine.name());
            assert_eq!(got.dist_sq, 0.0);
        }
    }
}

#[test]
fn single_series_collection() {
    let data = DatasetKind::Synthetic.generate(1, 64, 5);
    let q = DatasetKind::Synthetic.queries(1, 64, 5);
    for engine in Engine::ALL {
        let idx = MemoryIndex::build(data.clone(), engine, &opts(2, 10)).unwrap();
        let got = idx.nn(q.get(0)).unwrap().unwrap();
        assert_eq!(got.pos, 0, "{}", engine.name());
    }
}

#[test]
fn empty_collection_returns_none() {
    let data = Dataset::new(64).unwrap();
    for engine in Engine::ALL {
        let idx = MemoryIndex::build(data.clone(), engine, &opts(2, 10)).unwrap();
        assert!(idx.nn(&[0.0; 64]).unwrap().is_none(), "{}", engine.name());
    }
}

#[test]
fn identical_series_tie_break_deterministically() {
    // 50 copies of the same series: the NN must be the lowest position,
    // on every engine, regardless of thread interleaving.
    let mut data = Dataset::new(32).unwrap();
    let proto = DatasetKind::Synthetic.generate(1, 32, 8);
    for _ in 0..50 {
        data.push(proto.get(0)).unwrap();
    }
    for engine in Engine::ALL {
        let idx = MemoryIndex::build(data.clone(), engine, &opts(8, 5)).unwrap();
        for _ in 0..5 {
            let got = idx.nn(proto.get(0)).unwrap().unwrap();
            assert_eq!(got.pos, 0, "{}", engine.name());
            assert_eq!(got.dist_sq, 0.0);
        }
    }
}
