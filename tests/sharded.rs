//! Sharded scatter-gather equivalence suite: a [`ShardedIndex`] must be a
//! drop-in replacement for a monolithic index over the concatenated
//! dataset. Exact answers are element-wise **bit-identical** on every
//! engine, measure, and shard count — including tie-groups straddling a
//! shard boundary — and a single query equals the matching row of the
//! batch. Plus the two operational regressions: an 8-shard build must not
//! multiply pool workers, and a read fault in one shard must report which
//! shard died and in which phase.

use dsidx::prelude::*;
use dsidx::ShardedIndex;
use proptest::prelude::*;
use std::sync::Arc;

fn opts(threads: usize) -> Options {
    Options::default()
        .with_threads(threads)
        .with_leaf_capacity(12)
        .with_segments(8)
}

/// Bit-identical comparison: positions AND distance bit patterns.
fn assert_bit_identical(want: &[Match], got: &[Match], label: &str) {
    assert_eq!(want.len(), got.len(), "{label}: lengths differ");
    for (w, g) in want.iter().zip(got) {
        assert_eq!(w.pos, g.pos, "{label}: positions differ");
        assert_eq!(
            w.dist_sq.to_bits(),
            g.dist_sq.to_bits(),
            "{label}: distance bits differ at pos {}",
            w.pos
        );
    }
}

/// A tie-group of identical series planted *across* a shard boundary must
/// come back at equal distances, ordered by global position — the
/// tie-break a monolithic index applies, which the shards' rebased
/// `OffsetTopK` views have to reproduce even though the tied candidates
/// live in different shards and race through the shared collector.
#[test]
fn tie_group_straddling_a_shard_boundary_keeps_global_order() {
    let series_len = 64usize;
    let total = 300usize;
    let base = DatasetKind::Synthetic.generate(total, series_len, 77);
    let probe: Vec<f32> = base.get(42).to_vec();
    // 3 shards over 300 series split at 100 and 200; plant the probe at
    // 98..102 so the tie-group straddles the first boundary.
    let mut flat = Vec::with_capacity(total * series_len);
    for pos in 0..total {
        if (98..102).contains(&pos) {
            flat.extend_from_slice(&probe);
        } else {
            flat.extend_from_slice(base.get(pos));
        }
    }
    let data = Dataset::from_flat(flat, series_len).unwrap();
    let qrefs: Vec<&[f32]> = vec![&probe];
    for engine in Engine::ALL {
        let monolith = MemoryIndex::build(data.clone(), engine, &opts(2)).unwrap();
        let sharded = ShardedIndex::build_in_memory(&data, 3, engine, &opts(2)).unwrap();
        for spec in [
            QuerySpec::knn(6),
            QuerySpec::knn(6).measure(Measure::Dtw { band: 3 }),
        ] {
            let want = monolith.search(&qrefs, &spec).unwrap().into_single();
            let got = sharded.search(&qrefs, &spec).unwrap().into_single();
            let label = format!("{} {:?}", engine.name(), spec.measure_kind());
            assert_bit_identical(&want, &got, &label);
            // The planted copies (and the original at 42) are the exact
            // ties; they must lead the list in ascending global position.
            let zero: Vec<u32> = got
                .iter()
                .filter(|m| m.dist_sq == 0.0)
                .map(|m| m.pos)
                .collect();
            assert_eq!(zero, vec![42, 98, 99, 100, 101], "{label}: tie order");
        }
    }
}

/// Pool-oversubscription regression: building and searching an 8-shard
/// index must reuse the one cached global pool per worker count instead
/// of spawning `8 * threads` workers. This test owns the distinctive
/// worker count 5; the other tests in this binary stick to 1–2 threads,
/// so any growth near `8 * 5` here is the regression.
#[test]
fn eight_shard_search_does_not_multiply_pool_workers() {
    let threads = 5usize;
    dsidx::sync::pool::global(threads).broadcast(&|_| {});
    let before = dsidx::sync::pool::cached_worker_total();

    let data = DatasetKind::Synthetic.generate(640, 64, 5);
    let qs = DatasetKind::Synthetic.queries(2, 64, 5);
    let qrefs: Vec<&[f32]> = qs.iter().collect();
    let sharded = ShardedIndex::build_in_memory(&data, 8, Engine::Messi, &opts(threads)).unwrap();
    sharded.search(&qrefs, &QuerySpec::knn(4)).unwrap();
    sharded
        .search(&qrefs, &QuerySpec::knn(4).measure(Measure::Dtw { band: 3 }))
        .unwrap();

    let growth = dsidx::sync::pool::cached_worker_total().saturating_sub(before);
    assert!(
        growth < threads * 8,
        "8-shard search multiplied pool workers: census grew by {growth}"
    );
    // Stronger: the size-5 pool was warmed above, so the sharded build
    // and searches themselves add nothing; any slack is other tests in
    // this binary warming their own (smaller) pools concurrently.
    assert!(
        growth <= threads,
        "shards must share the cached per-size pool; census grew by {growth}"
    );
}

/// A mid-search read fault on one on-disk shard must name the dying
/// shard and the phase it died in — the `ErrorSlot` →
/// `StorageError::Context` plumbing across the scatter boundary.
#[test]
fn disk_shard_read_fault_reports_shard_and_phase() {
    let dir = std::env::temp_dir().join(format!("dsidx-sharded-fault-{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    let data = DatasetKind::Synthetic.generate(240, 64, 13);
    let path = dir.join("fault.dsidx");
    dsidx::storage::write_dataset(&path, &data, Arc::new(Device::unthrottled())).unwrap();

    let mut sharded = ShardedIndex::build_on_disk(
        &path,
        &dir,
        3,
        Engine::Paris,
        &opts(2),
        DeviceProfile::UNTHROTTLED,
    )
    .unwrap();
    assert_eq!(sharded.shard_count(), 3);
    assert_eq!(sharded.len(), 240);

    let qs = DatasetKind::Synthetic.queries(2, 64, 13);
    let qrefs: Vec<&[f32]> = qs.iter().collect();
    // Healthy first: the sharded disk index answers like the monolith.
    let monolith = MemoryIndex::build(data, Engine::Paris, &opts(2)).unwrap();
    let want = monolith.search(&qrefs, &QuerySpec::knn(5)).unwrap();
    let got = sharded.search(&qrefs, &QuerySpec::knn(5)).unwrap();
    assert_eq!(want.matches(), got.matches());

    // Now shard 2's device dies after 4 reads, mid-search.
    sharded.fault_inject_shard(2, 4).unwrap();
    let err = sharded
        .search(&qrefs, &QuerySpec::knn(5))
        .expect_err("shard 2 read budget exhausted");
    let msg = err.to_string();
    assert!(
        msg.contains("during") && msg.contains("(shard 2)"),
        "fault must carry phase and shard: {msg}"
    );
    // Approximate runs per query, so the report adds the query index.
    let err = sharded
        .search(&qrefs, &QuerySpec::knn(5).fidelity(Fidelity::Approximate))
        .expect_err("shard 2 read budget exhausted");
    let msg = err.to_string();
    assert!(
        msg.contains("shard 2, query"),
        "fault must carry shard and query: {msg}"
    );
    std::fs::remove_dir_all(&dir).ok();
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// The drop-in contract, property-tested: on arbitrary data, any
    /// engine, either measure, exact answers from a `ShardedIndex` are
    /// element-wise bit-identical to the monolithic `MemoryIndex` — for
    /// the whole batch and for each query searched alone — and
    /// approximate answers keep the fidelity contract (never below the
    /// exact distance at the same rank).
    #[test]
    fn sharded_is_a_drop_in_for_the_monolith(
        flat in prop::collection::vec(-10.0f32..10.0, 45 * 32),
        qflat in prop::collection::vec(-10.0f32..10.0, 2 * 32),
        shards in 2usize..5,
        k in 1usize..6,
        band in 0usize..5,
        engine_sel in 0usize..4,
    ) {
        let mut data = Dataset::from_flat(flat, 32).unwrap();
        data.znormalize_all();
        let (mut q0, mut q1) = {
            let (a, b) = qflat.split_at(32);
            (a.to_vec(), b.to_vec())
        };
        dsidx::series::znorm::znormalize(&mut q0);
        dsidx::series::znorm::znormalize(&mut q1);
        let engine = Engine::ALL[engine_sel];
        let opts = Options::default()
            .with_threads(2)
            .with_leaf_capacity(8)
            .with_segments(8);
        let monolith = MemoryIndex::build(data.clone(), engine, &opts).unwrap();
        let sharded = ShardedIndex::build_in_memory(&data, shards, engine, &opts).unwrap();
        let batch: Vec<&[f32]> = vec![&q0, &q1];
        for measure in [Measure::Euclidean, Measure::Dtw { band }] {
            let spec = QuerySpec::knn(k).measure(measure);
            let want = monolith.search(&batch, &spec).unwrap();
            let got = sharded.search(&batch, &spec).unwrap();
            for (qi, (w, g)) in want.matches().iter().zip(got.matches()).enumerate() {
                prop_assert_eq!(w.len(), g.len());
                for (wm, gm) in w.iter().zip(g) {
                    prop_assert_eq!(wm.pos, gm.pos, "{} {:?} query {}", engine.name(), measure, qi);
                    prop_assert_eq!(wm.dist_sq.to_bits(), gm.dist_sq.to_bits());
                }
                // Single == its batch row: a batch of one takes the same
                // path through the shared collectors.
                let single = sharded.search(&[batch[qi]], &spec).unwrap().into_single();
                prop_assert_eq!(&single, g);
            }
            // Approximate fidelity: per-shard trees differ from the
            // monolith's, so the contract is semantic — never below the
            // exact distance at the same rank.
            let approx = sharded
                .search(&batch, &spec.clone().fidelity(Fidelity::Approximate))
                .unwrap();
            for (a_row, e_row) in approx.matches().iter().zip(want.matches()) {
                prop_assert!(!a_row.is_empty());
                for (a, e) in a_row.iter().zip(e_row) {
                    prop_assert!(
                        a.dist_sq >= e.dist_sq - e.dist_sq * 1e-5 - 1e-6,
                        "{} {:?}: approximate {} below exact {}",
                        engine.name(), measure, a.dist_sq, e.dist_sq
                    );
                }
            }
        }
    }
}
