//! Persistent index snapshots end to end: save → open round-trips answer
//! the full query plane bit-identically to the freshly built index, on
//! every residence (memory, disk, sharded); damaged artifacts fail with
//! structured, actionable errors — never a panic or a silently wrong
//! index.

use dsidx::prelude::*;
use dsidx::storage::{write_dataset, StorageError};
use dsidx::{Error, ShardedIndex};
use proptest::prelude::*;
use std::sync::Arc;

fn tmpdir(name: &str) -> std::path::PathBuf {
    let dir = std::env::temp_dir().join(format!("dsidx-snap-{}-{name}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    dir
}

fn opts() -> Options {
    Options::default().with_threads(3).with_leaf_capacity(16)
}

/// Every (measure × fidelity) cell of the query plane, single and batch.
fn plane_specs() -> Vec<QuerySpec> {
    let mut specs = Vec::new();
    for k in [1usize, 5] {
        for measure in [Measure::Euclidean, Measure::Dtw { band: 4 }] {
            for fidelity in [Fidelity::Exact, Fidelity::Approximate] {
                specs.push(QuerySpec::knn(k).measure(measure).fidelity(fidelity));
            }
        }
    }
    specs
}

/// Asserts two indexes answer the whole query plane identically: batches
/// of several queries and the single-query special case.
fn assert_plane_identical<A: Search, B: Search>(
    built: &A,
    opened: &B,
    queries: &Dataset,
    tag: &str,
) {
    let qrefs: Vec<&[f32]> = queries.iter().collect();
    let single: Vec<&[f32]> = vec![queries.get(0)];
    for spec in plane_specs() {
        for qs in [&qrefs, &single] {
            let want = built.search(qs, &spec).unwrap();
            let got = opened.search(qs, &spec).unwrap();
            assert_eq!(got.matches(), want.matches(), "{tag} spec={spec:?}");
        }
    }
}

#[test]
fn memory_open_is_bit_identical_across_the_query_plane() {
    let dir = tmpdir("mem-plane");
    let data = DatasetKind::Synthetic.generate(400, 64, 7);
    let queries = DatasetKind::Synthetic.queries(3, 64, 7);
    for engine in Engine::ALL {
        let built = MemoryIndex::build(data.clone(), engine, &opts()).unwrap();
        let path = dir.join(format!("{}.snap", engine.name().replace('+', "p")));
        built.save(&path).unwrap();
        // Deliberately different Options defaults: the snapshot's saved
        // geometry must win, or answers would drift.
        let opened = MemoryIndex::open(&path, data.clone(), &Options::default()).unwrap();
        assert_plane_identical(&built, &opened, &queries, engine.name());
    }
}

#[test]
fn disk_open_is_bit_identical_across_the_query_plane() {
    let dir = tmpdir("disk-plane");
    let data = DatasetKind::Seismic.generate(350, 64, 9);
    let path = dir.join("data.dsidx");
    write_dataset(&path, &data, Arc::new(Device::unthrottled())).unwrap();
    let queries = DatasetKind::Seismic.queries(3, 64, 9);
    for engine in Engine::ALL {
        let built =
            DiskIndex::build(&path, &dir, engine, &opts(), DeviceProfile::UNTHROTTLED).unwrap();
        let snap = dir.join(format!("{}.snap", engine.name().replace('+', "p")));
        built.save(&snap).unwrap();
        let opened = DiskIndex::open(
            &snap,
            &path,
            &Options::default(),
            DeviceProfile::UNTHROTTLED,
        )
        .unwrap();
        assert_plane_identical(&built, &opened, &queries, engine.name());
    }
}

#[test]
fn opened_disk_index_charges_reads_to_the_modeled_device() {
    // The open is not free I/O: header, table, every tree section and the
    // embedded leaf store are all charged through the device model.
    let dir = tmpdir("disk-charge");
    let data = DatasetKind::Synthetic.generate(300, 64, 11);
    let path = dir.join("data.dsidx");
    write_dataset(&path, &data, Arc::new(Device::unthrottled())).unwrap();
    let built = DiskIndex::build(
        &path,
        &dir,
        Engine::Paris,
        &opts(),
        DeviceProfile::UNTHROTTLED,
    )
    .unwrap();
    let snap = dir.join("p.snap");
    let saved_bytes = built.save(&snap).unwrap();
    let opened = DiskIndex::open(
        &snap,
        &path,
        &Options::default(),
        DeviceProfile::UNTHROTTLED,
    )
    .unwrap();
    let read = opened.file().device().stats().bytes_read;
    // Every payload byte is charged; only inter-section alignment padding
    // (< 64 bytes per section, 8 sections max) goes unread.
    assert!(
        read + 64 * 8 >= saved_bytes && read > 0,
        "open read {read} bytes but the snapshot holds {saved_bytes}"
    );
}

#[test]
fn sharded_open_is_bit_identical_across_the_query_plane() {
    let dir = tmpdir("shard-plane");
    let data = DatasetKind::Sald.generate(450, 64, 13);
    let queries = DatasetKind::Sald.queries(3, 64, 13);
    let built = ShardedIndex::build_in_memory(&data, 3, Engine::Messi, &opts()).unwrap();
    let snapdir = dir.join("snap");
    built.save(&snapdir).unwrap();
    let opened = ShardedIndex::open_in_memory(&snapdir, &data, &Options::default()).unwrap();
    assert_plane_identical(&built, &opened, &queries, "sharded");
}

#[test]
fn truncated_snapshot_is_a_structured_error() {
    let dir = tmpdir("truncate");
    let data = DatasetKind::Synthetic.generate(200, 64, 17);
    let built = MemoryIndex::build(data.clone(), Engine::Messi, &opts()).unwrap();
    let path = dir.join("full.snap");
    built.save(&path).unwrap();
    let bytes = std::fs::read(&path).unwrap();
    // Cut at several depths: inside the header, the section table, and a
    // section payload. Every cut must yield Err, never a panic.
    for keep in [0, 7, 40, bytes.len() / 2, bytes.len() - 1] {
        let cut = dir.join(format!("cut-{keep}.snap"));
        std::fs::write(&cut, &bytes[..keep]).unwrap();
        let err = match MemoryIndex::open(&cut, data.clone(), &Options::default()) {
            Err(e) => e,
            Ok(_) => panic!("truncation to {keep} bytes accepted"),
        };
        let msg = err.to_string();
        assert!(!msg.is_empty(), "keep={keep}");
    }
}

#[test]
fn flipped_byte_is_a_checksum_mismatch() {
    let dir = tmpdir("flip");
    let data = DatasetKind::Synthetic.generate(200, 64, 19);
    let built = MemoryIndex::build(data.clone(), Engine::Ads, &opts()).unwrap();
    let path = dir.join("good.snap");
    built.save(&path).unwrap();
    let good = std::fs::read(&path).unwrap();
    // Flip one byte in the middle of the file (a section payload) and
    // near the start (the checksummed header).
    for at in [64usize, good.len() / 2, good.len() - 1] {
        let mut bad = good.clone();
        bad[at] ^= 0x40;
        let flipped = dir.join(format!("flip-{at}.snap"));
        std::fs::write(&flipped, &bad).unwrap();
        let err = match MemoryIndex::open(&flipped, data.clone(), &Options::default()) {
            Err(Error::Storage(e)) => e,
            Err(other) => panic!("non-storage error for flip at {at}: {other}"),
            Ok(_) => panic!("flipped byte at {at} accepted"),
        };
        // Either the corruption is caught by a checksum, or by a decoder
        // invariant (a flipped byte can also turn one valid field into
        // another that a structural check rejects) — but it is always
        // caught, with a Display that says what to do.
        let msg = err.to_string();
        assert!(
            !msg.is_empty(),
            "flip at {at} produced an empty error message"
        );
        if let StorageError::ChecksumMismatch { section, .. } = err.root_cause() {
            assert!(!section.is_empty());
            assert!(msg.contains("rebuild"), "actionable message: {msg}");
        }
    }
}

#[test]
fn future_format_version_is_rejected_by_name() {
    let dir = tmpdir("version");
    let data = DatasetKind::Synthetic.generate(120, 64, 23);
    let built = MemoryIndex::build(data.clone(), Engine::Paris, &opts()).unwrap();
    let path = dir.join("v1.snap");
    built.save(&path).unwrap();
    let mut bytes = std::fs::read(&path).unwrap();
    // The format version is the little-endian u32 right after the magic.
    bytes[8..12].copy_from_slice(&99u32.to_le_bytes());
    let future = dir.join("v99.snap");
    std::fs::write(&future, &bytes).unwrap();
    let err = match MemoryIndex::open(&future, data, &Options::default()) {
        Err(Error::Storage(e)) => e,
        Err(other) => panic!("non-storage error: {other}"),
        Ok(_) => panic!("future version accepted"),
    };
    assert!(
        matches!(err.root_cause(), StorageError::BadVersion(99)),
        "{err}"
    );
}

#[test]
fn not_a_snapshot_is_bad_magic() {
    let dir = tmpdir("magic");
    let data = DatasetKind::Synthetic.generate(60, 64, 27);
    let path = dir.join("notes.txt");
    // Long enough to pass the length precheck, so the magic itself is
    // what gets rejected.
    std::fs::write(&path, vec![b'x'; 256]).unwrap();
    let err = match MemoryIndex::open(&path, data, &Options::default()) {
        Err(Error::Storage(e)) => e,
        Err(other) => panic!("non-storage error: {other}"),
        Ok(_) => panic!("text file accepted"),
    };
    assert!(matches!(err.root_cause(), StorageError::BadMagic), "{err}");
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// For arbitrary small collections, save → open round-trips every
    /// engine and answers 1-NN identically to the index it was saved
    /// from.
    #[test]
    fn snapshot_round_trip_preserves_answers(
        len in 8usize..48,
        count in 1usize..50,
        seed in 0u64..1_000,
        leaf in 1usize..24,
    ) {
        let dir = tmpdir("prop");
        let data = DatasetKind::Synthetic.generate(count, len, seed);
        let queries = DatasetKind::Synthetic.queries(2, len, seed.wrapping_add(1));
        let opts = Options::default()
            .with_threads(2)
            .with_leaf_capacity(leaf)
            .with_segments(8.min(len));
        for engine in Engine::ALL {
            let built = MemoryIndex::build(data.clone(), engine, &opts).unwrap();
            let path = dir.join(format!(
                "prop-{count}-{seed}-{leaf}-{}.snap",
                engine.name().replace('+', "p")
            ));
            built.save(&path).unwrap();
            let opened = MemoryIndex::open(&path, data.clone(), &Options::default()).unwrap();
            for q in queries.iter() {
                let want = built.search(&[q], &QuerySpec::nn()).unwrap().into_nn();
                let got = opened.search(&[q], &QuerySpec::nn()).unwrap().into_nn();
                prop_assert_eq!(got, want, "{}", engine.name());
            }
            std::fs::remove_file(&path).ok();
        }
    }
}
